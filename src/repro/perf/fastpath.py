"""Closed-form vectorized trial execution (DESIGN.md §15).

On the paper's own system model — reliable synchronous channels that
deliver everything — the lock-step execution of the three protocol
families is a *deterministic function of the topology and the
adversary's silence pattern*.  Every acceptance time is a BFS distance
along the directed delivery graph, every per-round send count follows
from those times, and every envelope size is profile arithmetic.  The
engine here evaluates those closed forms as numpy array passes, then
materialises the per-node protocol end-state (discovered graphs,
Bloom filters, known-id sets) and calls the real ``conclude()`` on
every node — so verdicts are produced by the exact same decision code
as the scalar path, and traffic is accounted byte-for-byte.

Closed forms, with D the delivery digraph (graph adjacency minus a
two-faced node's ``silent_towards`` arcs) and ``d_D`` directed hop
distances:

* **NECTAR** — announcement of edge (u, v) is accepted by node i at
  round ``acc(i) = min(d_D(u→i), d_D(v→i))`` (0 for endpoints); the
  accepted copy's sender is the smallest-id qualifying in-neighbor
  (deliveries happen in sorted sender order); at round r a node
  relays its round-(r−1) acceptances to every D-neighbor except each
  announcement's source, inside one batch envelope per neighbor whose
  size is exact profile arithmetic (chains carry r links in round r).
  Source exclusion can never delay an acceptance: the excluded
  neighbor is two rounds behind by construction.
* **MtG** — a node's filter after epoch e is the bitwise OR of the
  initial filters of every v with ``d_D(v→i) ≤ e`` (an all-ones page
  for saturating nodes); a node gossips when its filter changed since
  its last gossip (or on its periodic refresh), tracked on the actual
  bit arrays so Bloom collisions behave exactly as in the scalar run.
* **MtGv2** — the signed id of v reaches i at epoch ``d_D(v→i)``;
  counts and source exclusion as in NECTAR, without chains.

Quiescence mirrors the scheduler exactly: the first round that emits
zero envelopes is executed and then iteration stops (when the
quiescence skip is on).

Eligibility is strict — ``sync`` backend, an always-delivering channel
state, and a protocol population drawn entirely from one family's
closed-form-safe types.  Anything else returns None and the caller
runs the scalar scheduler.  One documented observability divergence:
trials that reach this engine never touch the verification cache, so
``cache_stats`` counters stay zero where the scalar path would count
hits (verdicts, traffic and rows are unaffected; the affected
configurations are FULL-mode runs with a cache and a two-faced
adversary).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.adversary.behaviors import (
    SaturatingMtgNode,
    TwoFacedMtgNode,
    TwoFacedMtgv2Node,
    TwoFacedNectarNode,
)
from repro.baselines.bloom import BloomFilter
from repro.baselines.mtg import MtgNode
from repro.baselines.mtgv2 import Mtgv2Node
from repro.core.nectar import NectarNode
from repro.crypto.sizes import WireProfile
from repro.graphs.graph import Graph
from repro.net.channel import ChannelModel
from repro.net.stats import TrafficStats
from repro.perf import numpy_or_none
from repro.perf.kernels import adjacency_matrix, directed_distances
from repro.types import NodeId

__all__ = ["try_run_trial"]

#: payload framing constants, mirrored from the payload classes (a
#: unit test pins them against the real ``encoded_size``).
_NECTAR_BATCH_COUNT_BYTES = 2
_NECTAR_CHAIN_COUNT_BYTES = 2
_MTGV2_COUNT_BYTES = 2
_BLOOM_GEOMETRY_BYTES = 5


def try_run_trial(
    graph: Graph,
    protocols: Mapping[NodeId, Any],
    *,
    profile: WireProfile,
    channel: ChannelModel,
    seed: int,
    rounds: int,
    quiescence_skip: bool,
) -> tuple[dict[NodeId, Any], TrafficStats, int] | None:
    """Run one trial through the closed-form engine, if eligible.

    Returns ``(verdicts, stats, rounds_executed)`` — exactly what the
    scalar ``SyncNetwork.run`` would have produced — or None when any
    eligibility condition fails.
    """
    np = numpy_or_none()
    if np is None or rounds < 1:
        return None
    state = channel.state(graph, seed)
    if not state.always_delivers:
        return None
    family = _classify(graph, protocols)
    if family == "nectar":
        return _run_nectar(np, graph, protocols, profile, rounds, quiescence_skip)
    if family == "mtg":
        return _run_mtg(np, graph, protocols, profile, rounds, quiescence_skip)
    if family == "mtgv2":
        return _run_mtgv2(np, graph, protocols, profile, rounds, quiescence_skip)
    return None


# ----------------------------------------------------------------------
# Eligibility
# ----------------------------------------------------------------------
def _classify(graph: Graph, protocols: Mapping[NodeId, Any]) -> str | None:
    kinds = {type(p) for p in protocols.values()}
    if kinds <= {NectarNode, TwoFacedNectarNode}:
        has_two_faced = TwoFacedNectarNode in kinds
        uses_cache = False
        for node_id, p in protocols.items():
            if not p._batching or p._neighbors != graph.neighbors(node_id):
                return None
            validator = p._validator
            if validator.mode.value == "full" and validator.cache is not None:
                uses_cache = True
        if uses_cache and not has_two_faced:
            # FULL honest runs with a shared cache keep the scalar
            # path: their cache-hit observability is pinned by tests,
            # and the stacked-HMAC primer accelerates them instead.
            return None
        return "nectar"
    if kinds <= {MtgNode, SaturatingMtgNode, TwoFacedMtgNode}:
        geometries = {
            (p._filter.bit_count, p._filter.hash_count) for p in protocols.values()
        }
        if len(geometries) != 1:
            return None
        bit_count = next(iter(geometries))[0]
        if bit_count % 8 != 0:
            return None
        for node_id, p in protocols.items():
            if p._n != graph.n or p._neighbors != graph.neighbors(node_id):
                return None
        return "mtg"
    if kinds <= {Mtgv2Node, TwoFacedMtgv2Node}:
        for node_id, p in protocols.items():
            if p._n != graph.n or p._neighbors != graph.neighbors(node_id):
                return None
        return "mtgv2"
    return None


def _delivery_matrix(np, graph: Graph, protocols: Mapping[NodeId, Any]):
    """Graph adjacency minus each two-faced node's silent arcs."""
    matrix = np.array(adjacency_matrix(graph), dtype=bool)
    for node_id, p in protocols.items():
        silent = getattr(p, "_silent_towards", None)
        if silent:
            for target in silent:
                if 0 <= target < graph.n:
                    matrix[node_id, target] = False
    return matrix


def _fill_stats(
    np, stats: TrafficStats, sent_bytes, sent_msgs, recv_bytes, recv_msgs
) -> None:
    for node in np.flatnonzero(sent_msgs):
        node = int(node)
        stats.record_send_bulk(node, int(sent_bytes[node]), int(sent_msgs[node]))
    for node in np.flatnonzero(recv_msgs):
        node = int(node)
        stats.record_receive_bulk(node, int(recv_bytes[node]), int(recv_msgs[node]))


def _conclude_all(protocols: Mapping[NodeId, Any]) -> dict[NodeId, Any]:
    return {node_id: protocols[node_id].conclude() for node_id in sorted(protocols)}


def _acceptance_sources(np, delivery, acc_rows):
    """Per item-row, the smallest-id sender of each first acceptance.

    ``acc_rows[k, i]`` is the acceptance round of item k at node i;
    the source is the smallest s with an arc s→i and
    ``acc[s] == acc[i] - 1`` (deliveries arrive in sorted sender
    order), or -1 for originators.
    """
    items = acc_rows.shape[0]
    src = np.full(acc_rows.shape, -1, dtype=np.int64)
    for k in range(items):
        acc = acc_rows[k]
        candidates = delivery & (acc[:, None] + 1 == acc[None, :])
        has_candidate = candidates.any(axis=0)
        src[k] = np.where(has_candidate, candidates.argmax(axis=0), -1)
    return src


# ----------------------------------------------------------------------
# NECTAR
# ----------------------------------------------------------------------
def _run_nectar(
    np,
    graph: Graph,
    protocols: Mapping[NodeId, Any],
    profile: WireProfile,
    rounds: int,
    quiescence_skip: bool,
):
    n = graph.n
    delivery = _delivery_matrix(np, graph, protocols)
    edges = sorted(graph.edges())
    m = len(edges)
    dist = directed_distances(delivery)
    lo = np.fromiter((edge[0] for edge in edges), dtype=np.int64, count=m)
    hi = np.fromiter((edge[1] for edge in edges), dtype=np.int64, count=m)
    acc = np.minimum(dist[lo], dist[hi]) if m else np.zeros((0, n), dtype=np.int32)
    src = _acceptance_sources(np, delivery, acc)

    header = profile.envelope_header_bytes + _NECTAR_BATCH_COUNT_BYTES
    per_entry = profile.proof_bytes + _NECTAR_CHAIN_COUNT_BYTES
    link_bytes = profile.chain_link_bytes

    sent_bytes = np.zeros(n, dtype=np.int64)
    sent_msgs = np.zeros(n, dtype=np.int64)
    recv_bytes = np.zeros(n, dtype=np.int64)
    recv_msgs = np.zeros(n, dtype=np.int64)

    rounds_executed = rounds
    for round_number in range(1, rounds + 1):
        relayed = acc == (round_number - 1)
        pending = relayed.sum(axis=0)
        exclusions = np.zeros((n, n), dtype=np.int64)
        sourced = relayed & (src >= 0)
        if sourced.any():
            item_idx, sender_idx = np.nonzero(sourced)
            np.add.at(exclusions, (sender_idx, src[item_idx, sender_idx]), 1)
        counts = np.where(delivery, pending[:, None] - exclusions, 0)
        envelopes = counts > 0
        if not envelopes.any():
            if quiescence_skip:
                rounds_executed = round_number
                break
            continue
        sizes = np.where(
            envelopes,
            header + counts * (per_entry + round_number * link_bytes),
            0,
        )
        sent_bytes += sizes.sum(axis=1)
        sent_msgs += envelopes.sum(axis=1)
        recv_bytes += sizes.sum(axis=0)
        recv_msgs += envelopes.sum(axis=0)

    stats = TrafficStats()
    _fill_stats(np, stats, sent_bytes, sent_msgs, recv_bytes, recv_msgs)

    # Materialise each node's discovered graph from the shared proof
    # objects (the same objects the scalar run would have delivered),
    # then decide with the real decision code.
    proof_by_edge = {}
    for p in protocols.values():
        for proof in p._neighbor_proofs.values():
            proof_by_edge[proof.edge] = proof
    accepted = (acc >= 1) & (acc <= rounds_executed)
    for node_id in range(n):
        discovered = protocols[node_id]._discovered
        for item in np.flatnonzero(accepted[:, node_id]):
            discovered.add(proof_by_edge[edges[int(item)]])
    return _conclude_all(protocols), stats, rounds_executed


# ----------------------------------------------------------------------
# MtG
# ----------------------------------------------------------------------
def _run_mtg(
    np,
    graph: Graph,
    protocols: Mapping[NodeId, Any],
    profile: WireProfile,
    rounds: int,
    quiescence_skip: bool,
):
    n = graph.n
    delivery = _delivery_matrix(np, graph, protocols)
    sample = protocols[0]._filter
    bit_count, hash_count = sample.bit_count, sample.hash_count
    page = bit_count // 8

    filters = np.zeros((n, page), dtype=np.uint8)
    saturating = np.zeros(n, dtype=bool)
    periods = np.zeros(n, dtype=np.int64)
    for node_id in range(n):
        p = protocols[node_id]
        filters[node_id] = np.frombuffer(p._filter.to_bytes(), dtype=np.uint8)
        saturating[node_id] = type(p) is SaturatingMtgNode
        periods[node_id] = p._resend_period

    last_sent = np.zeros((n, page), dtype=np.uint8)
    last_valid = np.zeros(n, dtype=bool)
    out_degree = delivery.sum(axis=1)
    envelope_size = (
        profile.envelope_header_bytes
        + profile.epoch_header_bytes
        + _BLOOM_GEOMETRY_BYTES
        + page
    )

    sent_bytes = np.zeros(n, dtype=np.int64)
    sent_msgs = np.zeros(n, dtype=np.int64)
    recv_bytes = np.zeros(n, dtype=np.int64)
    recv_msgs = np.zeros(n, dtype=np.int64)

    rounds_executed = rounds
    for round_number in range(1, rounds + 1):
        current = filters.copy()
        current[saturating] = 0xFF
        periodic = (periods > 0) & (
            np.mod(round_number, np.where(periods > 0, periods, 1)) == 0
        )
        changed = ~last_valid | (current != last_sent).any(axis=1)
        gossiping = changed | periodic
        # The scalar node snapshots last_sent before its sends are
        # filtered, so even a fully-silenced gossiper updates it.
        last_sent[gossiping] = current[gossiping]
        last_valid |= gossiping
        effective = gossiping & (out_degree > 0)
        if not effective.any():
            if quiescence_skip:
                rounds_executed = round_number
                break
            continue
        sent_bytes += np.where(effective, out_degree * envelope_size, 0)
        sent_msgs += np.where(effective, out_degree, 0)
        arriving = delivery & gossiping[:, None]
        arrivals_per_node = arriving.sum(axis=0)
        recv_bytes += arrivals_per_node * envelope_size
        recv_msgs += arrivals_per_node
        for node_id in np.flatnonzero(arrivals_per_node):
            node_id = int(node_id)
            senders = np.flatnonzero(arriving[:, node_id])
            filters[node_id] |= np.bitwise_or.reduce(current[senders], axis=0)

    stats = TrafficStats()
    _fill_stats(np, stats, sent_bytes, sent_msgs, recv_bytes, recv_msgs)

    for node_id in range(n):
        protocols[node_id]._filter = BloomFilter.from_bytes(
            bit_count, hash_count, bytes(filters[node_id])
        )
    return _conclude_all(protocols), stats, rounds_executed


# ----------------------------------------------------------------------
# MtGv2
# ----------------------------------------------------------------------
def _run_mtgv2(
    np,
    graph: Graph,
    protocols: Mapping[NodeId, Any],
    profile: WireProfile,
    rounds: int,
    quiescence_skip: bool,
):
    n = graph.n
    delivery = _delivery_matrix(np, graph, protocols)
    # acc[v, i]: the epoch id v reaches node i (0 at its owner).
    acc = directed_distances(delivery)
    src = _acceptance_sources(np, delivery, acc)

    header = (
        profile.envelope_header_bytes
        + profile.epoch_header_bytes
        + _MTGV2_COUNT_BYTES
    )
    entry_bytes = profile.signed_id_bytes()

    sent_bytes = np.zeros(n, dtype=np.int64)
    sent_msgs = np.zeros(n, dtype=np.int64)
    recv_bytes = np.zeros(n, dtype=np.int64)
    recv_msgs = np.zeros(n, dtype=np.int64)

    rounds_executed = rounds
    for round_number in range(1, rounds + 1):
        relayed = acc == (round_number - 1)
        pending = relayed.sum(axis=0)
        exclusions = np.zeros((n, n), dtype=np.int64)
        sourced = relayed & (src >= 0)
        if sourced.any():
            item_idx, sender_idx = np.nonzero(sourced)
            np.add.at(exclusions, (sender_idx, src[item_idx, sender_idx]), 1)
        counts = np.where(delivery, pending[:, None] - exclusions, 0)
        envelopes = counts > 0
        if not envelopes.any():
            if quiescence_skip:
                rounds_executed = round_number
                break
            continue
        sizes = np.where(envelopes, header + counts * entry_bytes, 0)
        sent_bytes += sizes.sum(axis=1)
        sent_msgs += envelopes.sum(axis=1)
        recv_bytes += sizes.sum(axis=0)
        recv_msgs += envelopes.sum(axis=0)

    stats = TrafficStats()
    _fill_stats(np, stats, sent_bytes, sent_msgs, recv_bytes, recv_msgs)

    own_ids = {node_id: protocols[node_id]._known[node_id] for node_id in range(n)}
    accepted = (acc >= 1) & (acc <= rounds_executed)
    for node_id in range(n):
        known = protocols[node_id]._known
        for item in np.flatnonzero(accepted[:, node_id]):
            item = int(item)
            known[item] = own_ids[item]
    return _conclude_all(protocols), stats, rounds_executed
