"""Vectorized verification core (DESIGN.md §15).

This package hosts the numpy-accelerated kernels behind the hot paths
of the reproduction — batched κ certification
(:mod:`repro.perf.kernels`), the array-based trial fast path
(:mod:`repro.perf.fastpath`) — plus the switchboard that decides
whether they run at all.

The contract is strict equivalence: every kernel is a drop-in for an
existing pure-Python path and must produce bit-identical observable
results (verdicts, traffic bytes, figure rows, artefact payloads).
numpy is therefore an *optional* dependency (the ``[perf]`` packaging
extra): when it is missing — or disabled via the ``REPRO_NO_NUMPY``
environment variable, or :func:`force_kernels` — callers silently take
the historical scalar code, and the outputs do not change by a single
byte.  The equivalence is pinned by the property suite in
``tests/test_perf_kernels.py`` and by the golden-row/bench row-sha
gates in CI.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from types import ModuleType
from typing import Iterator

#: tri-state test/bench override: None = auto-detect, True = require
#: numpy (raises if missing), False = scalar paths only.
_FORCED: bool | None = None

#: memoised import result; ``None`` means "not probed yet".
_NUMPY: tuple[ModuleType | None] | None = None


def numpy_or_none() -> ModuleType | None:
    """The numpy module, or None when unavailable or switched off.

    The ``REPRO_NO_NUMPY=1`` environment variable simulates an
    environment without the ``[perf]`` extra (the CI fallback leg);
    it is honoured even when numpy is importable.
    """
    global _NUMPY
    if os.environ.get("REPRO_NO_NUMPY", "") not in ("", "0"):
        return None
    if _NUMPY is None:
        try:
            import numpy  # noqa: PLC0415 - optional dependency probe
        except ImportError:  # pragma: no cover - exercised via env gate
            _NUMPY = (None,)
        else:
            _NUMPY = (numpy,)
    return _NUMPY[0]


def kernels_enabled() -> bool:
    """Whether the vectorized kernels should run.

    Auto-detection (numpy importable and not disabled) unless a
    :func:`force_kernels` override is active.
    """
    if _FORCED is not None:
        return _FORCED
    return numpy_or_none() is not None


def numpy_version() -> str | None:
    """numpy's version string, or None when the kernels are scalar."""
    module = numpy_or_none()
    return getattr(module, "__version__", None) if module is not None else None


@contextmanager
def force_kernels(enabled: bool | None) -> Iterator[None]:
    """Temporarily force the kernels on, off, or back to auto (None).

    Forcing ``True`` on a numpy-less interpreter raises immediately —
    a bench asked to measure the vectorized mode must not silently
    measure the fallback.
    """
    global _FORCED
    if enabled is True and numpy_or_none() is None:
        raise RuntimeError(
            "cannot force vectorized kernels on: numpy is not available "
            "(install the [perf] extra or unset REPRO_NO_NUMPY)"
        )
    previous = _FORCED
    _FORCED = enabled
    try:
        yield
    finally:
        _FORCED = previous


def provenance() -> dict:
    """Kernel provenance for ledgers: mode plus numpy version."""
    vectorized = kernels_enabled()
    return {
        "vectorized": vectorized,
        "numpy": numpy_version() if vectorized else None,
    }


__all__ = [
    "force_kernels",
    "kernels_enabled",
    "numpy_or_none",
    "numpy_version",
    "provenance",
]
