"""Continuous partition monitoring over an evolving topology.

The paper's specification is one-shot (footnote 2): "In practical
cases, the connectivity graph might, however, evolve over time.  In
such cases, we assume that the graph remains static long enough for
the algorithm to execute."  :class:`PartitionMonitor` packages that
operational mode — re-run NECTAR on each topology epoch, yield a
verdict stream with change detection — as a thin adapter over the
mission layer (:mod:`repro.experiments.mission`, DESIGN.md §10).

The adapter preserves the legacy API and its exact behaviour (one
``run_trial`` per observed graph, seed striding in :meth:`watch`),
which ``tests/test_mission.py`` pins bit-identical to the mission
engine's ``epoch_seeds="stride"`` path.  New code should prefer
:func:`repro.experiments.mission.run_mission`: it adds ground-truth
tracking, temporal metrics (detection latency, false-alarm rate),
epoch sharding, environment/artifact support and the registered
``partition-detection`` sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ExperimentError
from repro.experiments.envspec import DEFAULT_ENVIRONMENT, EnvironmentSpec
from repro.experiments.mission import EpochOutcome, run_epoch
from repro.graphs.graph import Graph
from repro.types import Verdict


@dataclass(frozen=True)
class MonitorReport:
    """The monitor's output for one topology epoch.

    Attributes:
        epoch: 0-based epoch index.
        verdict: the (agreed) NECTAR verdict of this epoch.
        changed: whether the decision differs from the previous epoch.
        escalated: decision moved toward danger (NOT_PARTITIONABLE →
            PARTITIONABLE, or an unconfirmed PARTITIONABLE became
            confirmed).
        mean_kb_sent: per-node cost of this epoch's run.
    """

    epoch: int
    verdict: Verdict
    changed: bool
    escalated: bool
    mean_kb_sent: float


class PartitionMonitor:
    """Re-runs NECTAR per epoch and tracks decision transitions.

    Args:
        t: the Byzantine budget declared to every epoch's run.
        connectivity_cutoff: optional decision-phase cutoff (speeds up
            long missions; must exceed ``t``).
        env: optional execution environment for every epoch
            (DESIGN.md §8): channel model (``budgeted`` degradation
            included), backend, scheme, artifact cache.  The default
            is the paper's model and executes bit-identically to the
            historical monitor.
    """

    def __init__(
        self,
        t: int,
        connectivity_cutoff: int | None = None,
        env: EnvironmentSpec = DEFAULT_ENVIRONMENT,
    ) -> None:
        if t < 0:
            raise ExperimentError("t must be non-negative")
        self._t = t
        self._cutoff = connectivity_cutoff
        self._env = env
        self._epoch = 0
        self._last: EpochOutcome | None = None

    @property
    def epochs_observed(self) -> int:
        """Number of topologies processed so far."""
        return self._epoch

    def observe(self, graph: Graph, seed: int = 0) -> MonitorReport:
        """Run one epoch on ``graph`` and report the transition."""
        outcome = run_epoch(
            graph,
            t=self._t,
            connectivity_cutoff=self._cutoff,
            seed=seed,
            env=self._env,
            epoch=self._epoch,
        )
        previous = self._last
        changed = previous is not None and (
            previous.verdict.decision is not outcome.verdict.decision
            or previous.verdict.confirmed != outcome.verdict.confirmed
        )
        escalated = previous is not None and outcome.danger > previous.danger
        report = MonitorReport(
            epoch=self._epoch,
            verdict=outcome.verdict,
            changed=changed,
            escalated=escalated,
            mean_kb_sent=outcome.mean_kb_sent,
        )
        self._epoch += 1
        self._last = outcome
        return report

    def watch(self, graphs: Iterable[Graph], seed: int = 0) -> Iterator[MonitorReport]:
        """Observe a whole topology sequence lazily."""
        for offset, graph in enumerate(graphs):
            yield self.observe(graph, seed=seed + offset)


def first_escalation(
    monitor: PartitionMonitor, graphs: Iterable[Graph], seed: int = 0
) -> MonitorReport | None:
    """The first epoch whose decision moved toward danger, if any."""
    for report in monitor.watch(graphs, seed=seed):
        if report.escalated:
            return report
    return None
