"""Continuous partition monitoring over an evolving topology.

The paper's specification is one-shot (footnote 2): "In practical
cases, the connectivity graph might, however, evolve over time.  In
such cases, we assume that the graph remains static long enough for
the algorithm to execute."  This module packages that operational
mode: a :class:`PartitionMonitor` re-runs NECTAR on each topology
epoch, yielding a verdict stream with change detection — the pattern
the drone fleet of Fig. 2 would deploy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ExperimentError
from repro.experiments.runner import run_trial
from repro.graphs.graph import Graph
from repro.types import Decision, Verdict


@dataclass(frozen=True)
class MonitorReport:
    """The monitor's output for one topology epoch.

    Attributes:
        epoch: 0-based epoch index.
        verdict: the (agreed) NECTAR verdict of this epoch.
        changed: whether the decision differs from the previous epoch.
        escalated: decision moved toward danger (NOT_PARTITIONABLE →
            PARTITIONABLE, or an unconfirmed PARTITIONABLE became
            confirmed).
        mean_kb_sent: per-node cost of this epoch's run.
    """

    epoch: int
    verdict: Verdict
    changed: bool
    escalated: bool
    mean_kb_sent: float


def _danger_level(verdict: Verdict) -> int:
    """0 = safe, 1 = partitionable, 2 = confirmed partition."""
    if verdict.decision is Decision.NOT_PARTITIONABLE:
        return 0
    return 2 if verdict.confirmed else 1


class PartitionMonitor:
    """Re-runs NECTAR per epoch and tracks decision transitions.

    Args:
        t: the Byzantine budget declared to every epoch's run.
        connectivity_cutoff: optional decision-phase cutoff (speeds up
            long missions; must exceed ``t``).
    """

    def __init__(self, t: int, connectivity_cutoff: int | None = None) -> None:
        if t < 0:
            raise ExperimentError("t must be non-negative")
        self._t = t
        self._cutoff = connectivity_cutoff
        self._epoch = 0
        self._last: Verdict | None = None

    @property
    def epochs_observed(self) -> int:
        """Number of topologies processed so far."""
        return self._epoch

    def observe(self, graph: Graph, seed: int = 0) -> MonitorReport:
        """Run one epoch on ``graph`` and report the transition."""
        result = run_trial(
            graph,
            t=self._t,
            connectivity_cutoff=self._cutoff,
            seed=seed,
            with_ground_truth=False,
        )
        # Agreement (Def. 3) lets the monitor read any single node.
        verdict = result.verdicts[0]
        previous = self._last
        changed = previous is not None and (
            previous.decision is not verdict.decision
            or previous.confirmed != verdict.confirmed
        )
        escalated = previous is not None and _danger_level(
            verdict
        ) > _danger_level(previous)
        report = MonitorReport(
            epoch=self._epoch,
            verdict=verdict,
            changed=changed,
            escalated=escalated,
            mean_kb_sent=result.mean_kb_sent(),
        )
        self._epoch += 1
        self._last = verdict
        return report

    def watch(self, graphs: Iterable[Graph], seed: int = 0) -> Iterator[MonitorReport]:
        """Observe a whole topology sequence lazily."""
        for offset, graph in enumerate(graphs):
            yield self.observe(graph, seed=seed + offset)


def first_escalation(
    monitor: PartitionMonitor, graphs: Iterable[Graph], seed: int = 0
) -> MonitorReport | None:
    """The first epoch whose decision moved toward danger, if any."""
    for report in monitor.watch(graphs, seed=seed):
        if report.escalated:
            return report
    return None
