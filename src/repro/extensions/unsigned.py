"""Signature-free partition detection (the paper's Sec. VII conjecture).

    "we posit that it [Byzantine partition detection] can be
    accomplished without signatures in synchronous networks, albeit at
    a significant cost."

This module explores that conjecture constructively.  Instead of
chained signatures, edge announcements travel Dolev-style with the
path they followed, and a node accepts an edge (u, v) only when

* **both endpoints** independently claimed the edge (a correct node
  never claims a fictitious edge, so a single Byzantine node cannot
  attach itself to a correct victim — the unsigned analogue of the
  co-signed neighborhood proof), and
* each endpoint's claim is supported by t + 1 internally
  vertex-disjoint paths (or direct reception), so at least one copy
  travelled a fully correct route — the unsigned analogue of an
  unforgeable signature (Dolev [11]).

The decision phase is NECTAR's, unchanged.  The price is exactly what
the paper predicts: path-annotated flooding multiplies message counts
(worst case O(n!) versus NECTAR's O(n^4)), and acceptance needs
higher connectivity — claims only certify on well-connected graphs,
making the unsigned variant *more conservative* (it may answer
PARTITIONABLE where signed NECTAR certifies NOT_PARTITIONABLE, but
never the other way around on the same evidence).  The companion
bench quantifies the cost gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.decision import decide
from repro.errors import ProtocolError
from repro.extensions.dolev import DIRECT, disjoint_path_support
from repro.graphs.graph import Graph
from repro.net.message import Outgoing
from repro.net.simulator import RoundProtocol
from repro.crypto.sizes import WireProfile
from repro.types import Edge, NodeId, Verdict, canonical_edge


@dataclass(frozen=True)
class EdgeClaim:
    """An unsigned edge claim in flight.

    Attributes:
        claimant: the endpoint asserting the edge (must be one of the
            edge's endpoints; receivers enforce it).
        edge: the claimed edge, canonical.
        path: relays traversed so far (claimant and receiver excluded).
    """

    claimant: NodeId
    edge: Edge
    path: tuple[NodeId, ...]

    def encoded_size(self, profile: WireProfile) -> int:
        return profile.node_id_bytes * (3 + len(self.path))


class UnsignedNectarNode(RoundProtocol):
    """NECTAR without signatures, using disjoint-path evidence.

    Args:
        node_id: this node.
        n: system size.
        t: Byzantine bound.
        neighbors: Γ(node_id).
        connectivity_cutoff: forwarded to the decision phase.
    """

    def __init__(
        self,
        node_id: NodeId,
        n: int,
        t: int,
        neighbors: Iterable[NodeId],
        connectivity_cutoff: int | None = None,
    ) -> None:
        if t < 0:
            raise ProtocolError("t must be non-negative")
        self._node_id = node_id
        self._n = n
        self._t = t
        self._neighbors = frozenset(neighbors)
        if node_id in self._neighbors:
            raise ProtocolError("a node cannot neighbor itself")
        self._connectivity_cutoff = connectivity_cutoff
        # Evidence: (claimant, edge) -> received paths.
        self._paths: dict[tuple[NodeId, Edge], set[tuple[NodeId, ...]]] = {}
        self._certified: set[tuple[NodeId, Edge]] = set()
        self._seen_copies: set[EdgeClaim] = set()
        self._pending: list[tuple[EdgeClaim, NodeId]] = []
        self._decided = False
        # Our own adjacency is ground truth (channel authenticity).
        for neighbor in self._neighbors:
            edge = canonical_edge(node_id, neighbor)
            self._certified.add((node_id, edge))
            self._certified.add((neighbor, edge))

    # ------------------------------------------------------------------
    # RoundProtocol interface
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> NodeId:
        return self._node_id

    def accepted_edges(self) -> frozenset[Edge]:
        """Edges certified by both endpoints' claims."""
        by_edge: dict[Edge, set[NodeId]] = {}
        for claimant, edge in self._certified:
            by_edge.setdefault(edge, set()).add(claimant)
        return frozenset(
            edge
            for edge, claimants in by_edge.items()
            if set(edge) <= claimants
        )

    def begin_round(self, round_number: int) -> list[Outgoing]:
        outgoing: list[Outgoing] = []
        if round_number == 1:
            for neighbor in sorted(self._neighbors):
                claim_targets = sorted(self._neighbors)
                for other in claim_targets:
                    claim = EdgeClaim(
                        claimant=self._node_id,
                        edge=canonical_edge(self._node_id, other),
                        path=DIRECT,
                    )
                    outgoing.append(Outgoing(destination=neighbor, payload=claim))
        pending, self._pending = self._pending, []
        for claim, received_from in pending:
            relayed = EdgeClaim(
                claimant=claim.claimant,
                edge=claim.edge,
                path=claim.path + (self._node_id,),
            )
            blocked = set(relayed.path) | {claim.claimant, received_from}
            outgoing.extend(
                Outgoing(destination=neighbor, payload=relayed)
                for neighbor in sorted(self._neighbors - blocked)
            )
        return outgoing

    def deliver(self, round_number: int, sender: NodeId, payload: Any) -> None:
        if not isinstance(payload, EdgeClaim):
            return
        if payload.claimant not in payload.edge:
            return  # only endpoints may claim an edge
        if payload.edge[0] == payload.edge[1]:
            return
        if not (0 <= payload.edge[0] < self._n and 0 <= payload.edge[1] < self._n):
            return
        if self._node_id in payload.path or payload.claimant == self._node_id:
            return
        if payload.path:
            if payload.path[-1] != sender:
                return  # the channel contradicts the annotated path
        elif payload.claimant != sender:
            return
        if payload in self._seen_copies:
            return
        self._seen_copies.add(payload)
        key = (payload.claimant, payload.edge)
        self._paths.setdefault(key, set()).add(payload.path)
        if key not in self._certified:
            if disjoint_path_support(
                payload.claimant, self._node_id, self._paths[key], self._t + 1
            ):
                self._certified.add(key)
            self._pending.append((payload, sender))

    def conclude(self) -> Verdict:
        if self._decided:
            raise ProtocolError("decide() is one-shot")
        self._decided = True
        # Reuse NECTAR's decision phase over the certified edges.
        from repro.core.adjacency import DiscoveredGraph
        from repro.crypto.proofs import NeighborhoodProof

        discovered = DiscoveredGraph(self._n)
        for edge in self.accepted_edges():
            discovered.add(
                NeighborhoodProof(edge=edge, signature_lo=b"", signature_hi=b"")
            )
        return decide(
            discovered,
            self._node_id,
            self._t,
            connectivity_cutoff=self._connectivity_cutoff,
        )


class LyingClaimantNode(RoundProtocol):
    """Byzantine node claiming fictitious edges in the unsigned variant.

    The attack the both-endpoints rule exists to stop: the liar floods
    claims for edges toward ``victims`` it does not actually have.
    Correct victims never co-claim, so the edges are never certified
    (asserted by tests and the property suite).
    """

    def __init__(
        self,
        node_id: NodeId,
        neighbors: Iterable[NodeId],
        victims: Iterable[NodeId],
    ) -> None:
        self._node_id = node_id
        self._neighbors = sorted(set(neighbors))
        self._victims = sorted(set(victims) - {node_id})

    @property
    def node_id(self) -> NodeId:
        return self._node_id

    def begin_round(self, round_number: int) -> list[Outgoing]:
        if round_number != 1:
            return []
        outgoing = []
        for victim in self._victims:
            claim = EdgeClaim(
                claimant=self._node_id,
                edge=canonical_edge(self._node_id, victim),
                path=DIRECT,
            )
            outgoing.extend(
                Outgoing(destination=neighbor, payload=claim)
                for neighbor in self._neighbors
            )
        return outgoing

    def deliver(self, round_number: int, sender: NodeId, payload: Any) -> None:
        pass

    def conclude(self) -> None:
        return None


def unsigned_round_count(n: int) -> int:
    """Path-annotated flooding may need up to n rounds to unfold."""
    return max(1, n)


def build_unsigned_protocols(
    graph: Graph, t: int, connectivity_cutoff: int | None = None
) -> dict[NodeId, UnsignedNectarNode]:
    """One honest unsigned node per vertex of ``graph``."""
    return {
        v: UnsignedNectarNode(
            v,
            graph.n,
            t,
            graph.neighbors(v),
            connectivity_cutoff=connectivity_cutoff,
        )
        for v in graph.nodes()
    }
