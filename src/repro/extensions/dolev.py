"""Dolev's reliable communication on partially connected networks.

The related-work substrate of Sec. VI-B: Dolev [11] showed that
reliable point-to-point communication despite t Byzantine nodes is
possible iff the network is (2t+1)-connected, *without signatures*,
by flooding messages annotated with the path they travelled.  A
receiver delivers a message once it can exhibit t + 1 internally
vertex-disjoint paths that carried identical copies: at most t of any
t + 1 disjoint paths can contain a Byzantine node, so at least one
copy is authentic.

This module implements the unknown-topology variant as a
:class:`repro.net.simulator.RoundProtocol`, including the classic
optimisations that make it tractable on small graphs:

* copies received directly from the claimed source count as a
  zero-length (always-authentic) path;
* once delivered, a node stops relaying further copies of the same
  message (Bonomi et al. [12], optimisation MD.1-style).

The disjoint-path test is exact: a unit-vertex-capacity max-flow over
the union of the received paths.

It is both a faithful reproduction of the paper's cited substrate and
the engine behind :mod:`repro.extensions.unsigned`, the signature-free
NECTAR variant conjectured in the paper's conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable

from repro.errors import ProtocolError
from repro.graphs.maxflow import INFINITY, FlowNetwork
from repro.net.simulator import RoundProtocol
from repro.net.message import Outgoing
from repro.crypto.sizes import WireProfile
from repro.types import NodeId

#: Marker meaning "received straight from the source over the channel".
DIRECT: tuple[NodeId, ...] = ()


def disjoint_path_support(
    source: NodeId,
    target: NodeId,
    paths: Iterable[tuple[NodeId, ...]],
    threshold: int,
) -> bool:
    """Whether ``paths`` contain ``threshold`` internally disjoint paths.

    Args:
        source: the claimed originator.
        target: the evaluating node.
        paths: relay sequences (source and target excluded); the empty
            path denotes direct reception and is unconditionally
            authentic, so it counts as one disjoint path that no other
            path can collide with.
        threshold: required number of internally disjoint paths.

    The test runs a unit-vertex-capacity max flow over the union of
    the paths, which is exactly the maximum number of internally
    disjoint source→target routes within the received evidence
    (Menger's theorem again).
    """
    if threshold <= 0:
        return True
    path_list = [tuple(p) for p in paths]
    if DIRECT in path_list:
        # Direct reception is proof by itself; remaining demand drops
        # by one and no relay vertex is consumed.
        remaining = [p for p in path_list if p != DIRECT]
        return disjoint_path_support(source, target, remaining, threshold - 1)
    # Dense-index the vertices mentioned by the evidence.
    vertices: dict[NodeId, int] = {}

    def index_of(vertex: NodeId) -> int:
        if vertex not in vertices:
            vertices[vertex] = len(vertices)
        return vertices[vertex]

    index_of(source)
    index_of(target)
    arcs: set[tuple[NodeId, NodeId]] = set()
    for path in path_list:
        hops = [source, *path, target]
        if len(set(hops)) != len(hops):
            continue  # cyclic path: worthless evidence
        for a, b in zip(hops, hops[1:]):
            arcs.add((a, b))
        for vertex in path:
            index_of(vertex)
    network = FlowNetwork(2 * len(vertices))
    for vertex, dense in vertices.items():
        capacity = INFINITY if vertex in (source, target) else 1
        network.add_edge(2 * dense, 2 * dense + 1, capacity)
    for a, b in arcs:
        network.add_edge(2 * vertices[a] + 1, 2 * vertices[b], INFINITY)
    flow = network.max_flow(
        2 * vertices[source] + 1, 2 * vertices[target], cutoff=threshold
    )
    return flow >= threshold


@dataclass(frozen=True)
class DolevMessage:
    """A flooded copy: the claimed source, its payload and the path."""

    source: NodeId
    content: Hashable
    path: tuple[NodeId, ...]

    def encoded_size(self, profile: WireProfile) -> int:
        # source + per-hop ids + a fixed content stand-in of 32 bytes.
        return profile.node_id_bytes * (1 + len(self.path)) + 32


class DolevNode(RoundProtocol):
    """One node of Dolev's unsigned reliable broadcast.

    Args:
        node_id: this node.
        t: Byzantine bound; delivery requires t + 1 disjoint paths.
        neighbors: Γ(node_id).
        broadcast: content to reliably broadcast, or ``None`` for a
            pure relay/receiver node.
    """

    def __init__(
        self,
        node_id: NodeId,
        t: int,
        neighbors: Iterable[NodeId],
        broadcast: Hashable | None = None,
    ) -> None:
        if t < 0:
            raise ProtocolError("t must be non-negative")
        self._node_id = node_id
        self._t = t
        self._neighbors = frozenset(neighbors)
        if node_id in self._neighbors:
            raise ProtocolError("a node cannot neighbor itself")
        self._broadcast = broadcast
        # Evidence: (source, content) -> set of received paths.
        self._paths: dict[tuple[NodeId, Hashable], set[tuple[NodeId, ...]]] = {}
        self._delivered: set[tuple[NodeId, Hashable]] = set()
        self._seen_copies: set[DolevMessage] = set()
        self._pending: list[tuple[DolevMessage, NodeId]] = []

    # ------------------------------------------------------------------
    # RoundProtocol interface
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> NodeId:
        return self._node_id

    @property
    def delivered(self) -> frozenset[tuple[NodeId, Hashable]]:
        """(source, content) pairs reliably delivered so far."""
        return frozenset(self._delivered)

    def begin_round(self, round_number: int) -> list[Outgoing]:
        outgoing: list[Outgoing] = []
        if round_number == 1 and self._broadcast is not None:
            message = DolevMessage(
                source=self._node_id, content=self._broadcast, path=DIRECT
            )
            outgoing.extend(
                Outgoing(destination=neighbor, payload=message)
                for neighbor in sorted(self._neighbors)
            )
        pending, self._pending = self._pending, []
        for message, received_from in pending:
            relayed = DolevMessage(
                source=message.source,
                content=message.content,
                path=message.path + (self._node_id,),
            )
            blocked = set(relayed.path) | {message.source, received_from}
            outgoing.extend(
                Outgoing(destination=neighbor, payload=relayed)
                for neighbor in sorted(self._neighbors - blocked)
            )
        return outgoing

    def deliver(self, round_number: int, sender: NodeId, payload: Any) -> None:
        if not isinstance(payload, DolevMessage):
            return
        if self._node_id in payload.path or payload.source == self._node_id:
            return  # our own relay echoed back: drop
        # The path must end at the delivering neighbor (or be direct
        # from the source itself) — the channel authenticates the hop.
        if payload.path:
            if payload.path[-1] != sender:
                return
        elif payload.source != sender:
            return
        if payload in self._seen_copies:
            return
        self._seen_copies.add(payload)
        key = (payload.source, payload.content)
        self._paths.setdefault(key, set()).add(payload.path)
        if key not in self._delivered:
            if disjoint_path_support(
                payload.source, self._node_id, self._paths[key], self._t + 1
            ):
                self._delivered.add(key)
            # Relay only while undelivered (and the copy that completed
            # the proof): delivered messages need no more evidence.
            self._pending.append((payload, sender))
        # else: suppression — no further relaying of delivered messages.

    def conclude(self) -> frozenset[tuple[NodeId, Hashable]]:
        return self.delivered


def dolev_round_count(n: int) -> int:
    """Rounds for every path to unfold: n is always sufficient."""
    return max(1, n)
