"""Extensions beyond the paper's core: its cited substrate (Dolev
reliable communication), its conclusion's conjecture (signature-free
partition detection) and its footnote-2 operational mode (continuous
monitoring)."""

from repro.extensions.dolev import (
    DIRECT,
    DolevMessage,
    DolevNode,
    disjoint_path_support,
    dolev_round_count,
)
from repro.extensions.monitor import (
    MonitorReport,
    PartitionMonitor,
    first_escalation,
)
from repro.extensions.unsigned import (
    EdgeClaim,
    LyingClaimantNode,
    UnsignedNectarNode,
    build_unsigned_protocols,
    unsigned_round_count,
)

__all__ = [
    "DIRECT",
    "DolevMessage",
    "DolevNode",
    "disjoint_path_support",
    "dolev_round_count",
    "MonitorReport",
    "PartitionMonitor",
    "first_escalation",
    "EdgeClaim",
    "LyingClaimantNode",
    "UnsignedNectarNode",
    "build_unsigned_protocols",
    "unsigned_round_count",
]
