"""Epoch-cadence scheduling for the fleet service (DESIGN.md §12.3).

The :class:`Scheduler` owns the mission registry's execution order: a
round-robin queue over live missions, from which each service tick
selects a bounded window (``limit`` = the service's concurrency bound).
Fairness is structural — selected missions rotate to the back of the
queue, so no mission can starve another regardless of length — and the
optional seeded shuffle perturbs only the order *within* one tick's
window, keeping multi-mission interleavings reproducible run to run
(``seed`` is part of the service configuration, pinned by
``tests/test_service.py``).

Determinism matters here for the same reason it does everywhere else in
this repo: the service's firehose event order is a function of
(submission order, scheduler seed, tick count) and nothing else — no
wall clock, no thread races — so an interleaved streaming run can be
replayed exactly.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from repro.experiments.mission import MissionResult, MissionSession

#: mission lifecycle states.
ACTIVE = "active"
COMPLETED = "completed"
CANCELLED = "cancelled"
FAILED = "failed"

MISSION_STATES = (ACTIVE, COMPLETED, CANCELLED, FAILED)


@dataclass
class MissionRecord:
    """One live (or finished) mission in the service registry."""

    mission_id: str
    session: MissionSession
    label: str = ""
    #: optional path: on completion, the service writes the mission's
    #: verdict-stream artefact there (``repro diff``-able vs batch).
    artifact: str | None = None
    state: str = ACTIVE
    error: str = ""
    #: whether ground truth has reported a cut so far (gates the
    #: one-shot ``CutEmerged`` event).
    cut_emerged: bool = False
    #: events dropped for this mission by slow subscribers.
    events_shed: int = 0
    result: MissionResult | None = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        return self.state != ACTIVE


class Scheduler:
    """Fair, deterministic tick-window selection over live missions.

    Args:
        seed: window-shuffle seed; ``None`` disables the shuffle and
            the window is pure round-robin order.
    """

    def __init__(self, seed: int | None = 0) -> None:
        self._queue: deque[str] = deque()
        self._records: dict[str, MissionRecord] = {}
        self._rng = (
            None
            if seed is None
            else random.Random(("fleet-scheduler", seed).__repr__())
        )
        #: completed select() calls (the service's tick counter).
        self.ticks = 0

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, mission_id: str) -> bool:
        return mission_id in self._records

    def get(self, mission_id: str) -> MissionRecord | None:
        return self._records.get(mission_id)

    def records(self) -> Iterator[MissionRecord]:
        """Every record, in submission order."""
        return iter(self._records.values())

    def add(self, record: MissionRecord) -> None:
        """Register a mission at the back of the round-robin queue."""
        self._records[record.mission_id] = record
        self._queue.append(record.mission_id)

    def has_active(self) -> bool:
        return any(record.state == ACTIVE for record in self._records.values())

    def active_count(self) -> int:
        return sum(
            1 for record in self._records.values() if record.state == ACTIVE
        )

    def select(self, limit: int) -> list[MissionRecord]:
        """The next tick's window: up to ``limit`` active missions.

        Round-robin: selected missions rotate to the back; finished
        missions are lazily dropped from the queue as they surface.
        With a seeded RNG the window's internal order is shuffled —
        deterministically, because the RNG state advances only with
        selections, never with time.
        """
        if limit < 1:
            raise ValueError(f"tick window must be >= 1, got {limit}")
        self.ticks += 1
        window: list[MissionRecord] = []
        scanned = 0
        budget = len(self._queue)
        while self._queue and len(window) < limit and scanned < budget:
            mission_id = self._queue.popleft()
            scanned += 1
            record = self._records[mission_id]
            if record.state != ACTIVE:
                continue  # drop finished missions from the rotation
            window.append(record)
            self._queue.append(mission_id)
        if self._rng is not None and len(window) > 1:
            self._rng.shuffle(window)
        return window


__all__ = [
    "ACTIVE",
    "CANCELLED",
    "COMPLETED",
    "FAILED",
    "MISSION_STATES",
    "MissionRecord",
    "Scheduler",
]
