"""The fleet service: long-lived mission streaming (DESIGN.md §12).

``repro serve`` boots a :class:`FleetService` — a registry of live
:class:`~repro.experiments.mission.MissionSession` objects multiplexed
on one event loop — and speaks the NDJSON protocol of
:mod:`repro.service.protocol` over stdio or a unix socket.  Streamed
verdicts are bit-identical to batch ``run_mission`` by construction;
the typed event vocabulary lives in :mod:`repro.service.events` and is
shared with the batch CLI's ``--events`` logs.
"""

from repro.service.events import (
    EVENT_TYPES,
    TERMINAL_EVENTS,
    CutEmerged,
    EpochCompleted,
    EpochStarted,
    EventLog,
    MissionAccepted,
    MissionCancelled,
    MissionCompleted,
    MissionEvent,
    MissionFailed,
    VerdictChanged,
    event_from_payload,
    event_payload,
    mission_events,
    read_event_log,
)
from repro.service.fleet import FleetService, Subscription
from repro.service.protocol import handle_request, serve, serve_socket, serve_stdio
from repro.service.scheduler import (
    ACTIVE,
    CANCELLED,
    COMPLETED,
    FAILED,
    MISSION_STATES,
    MissionRecord,
    Scheduler,
)

__all__ = [
    "ACTIVE",
    "CANCELLED",
    "COMPLETED",
    "EVENT_TYPES",
    "FAILED",
    "FleetService",
    "MISSION_STATES",
    "CutEmerged",
    "EpochCompleted",
    "EpochStarted",
    "EventLog",
    "MissionAccepted",
    "MissionCancelled",
    "MissionCompleted",
    "MissionEvent",
    "MissionFailed",
    "MissionRecord",
    "Scheduler",
    "Subscription",
    "TERMINAL_EVENTS",
    "VerdictChanged",
    "event_from_payload",
    "event_payload",
    "handle_request",
    "mission_events",
    "read_event_log",
    "serve",
    "serve_socket",
    "serve_stdio",
]
