"""Typed mission events and their JSONL wire form (DESIGN.md §12.2).

One event vocabulary shared by the streaming fleet service and the
batch CLI: the service emits events incrementally as epochs land
(:mod:`repro.service.fleet`), while :func:`mission_events` derives the
exact same sequence from a finished batch
:class:`~repro.experiments.mission.MissionResult` — which is what lets
``tests/test_service.py`` pin streamed ≡ batch event-for-event, and
lets ``repro mission --events`` and ``repro serve --events`` write
interchangeable JSONL logs.

Every event is a frozen dataclass of JSON-scalar fields (verdicts are
flattened to ``decision``/``confirmed`` strings at construction), so
:func:`event_payload` / :func:`event_from_payload` round-trip without
any custom serialisation.

The per-mission stream is, in order::

    MissionAccepted
    (EpochStarted  EpochCompleted  [VerdictChanged]  [CutEmerged]) * epochs
    MissionCompleted | MissionCancelled | MissionFailed

``VerdictChanged`` fires on the transition the legacy monitor calls a
change (decision or confirmation flip); ``CutEmerged`` fires once, at
the first epoch whose topology is truly t-partitionable (ground truth,
so only on missions run with it).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass
from typing import Any, Iterator, TextIO

from repro.errors import ExperimentError
from repro.experiments.mission import (
    EpochReport,
    MissionResult,
    MissionSpec,
    mission_digest,
    mission_graphs,
    topology_delta,
)


@dataclass(frozen=True)
class MissionEvent:
    """Base class: every event names the mission it belongs to."""

    mission_id: str


@dataclass(frozen=True)
class MissionAccepted(MissionEvent):
    """The mission entered the registry (or the batch replay started)."""

    digest: str
    epochs: int
    protocol: str
    label: str = ""


@dataclass(frozen=True)
class EpochStarted(MissionEvent):
    """The epoch's topology delta is being applied and flown."""

    epoch: int
    edges_added: int
    edges_removed: int


@dataclass(frozen=True)
class EpochCompleted(MissionEvent):
    """One epoch's full annotated report (the verdict-stream row)."""

    epoch: int
    danger: int
    decision: str
    confirmed: bool
    changed: bool
    escalated: bool
    mean_kb_sent: float
    rounds_executed: int | None
    partitionable: bool | None
    correct_cut: bool | None


@dataclass(frozen=True)
class VerdictChanged(MissionEvent):
    """The verdict flipped vs the previous epoch (monitor semantics)."""

    epoch: int
    danger: int
    decision: str
    confirmed: bool


@dataclass(frozen=True)
class CutEmerged(MissionEvent):
    """First epoch whose topology is truly t-partitionable."""

    epoch: int


@dataclass(frozen=True)
class MissionCompleted(MissionEvent):
    """Terminal: every epoch flown; temporal metrics attached.

    Metric fields are ``None`` when the mission ran without ground
    truth (the metrics are undefined, not zero).
    """

    epochs: int
    emergence_epoch: int | None
    detection_epoch: int | None
    detection_latency: float | None
    false_alarm_rate: float | None
    mean_kb_per_epoch: float


@dataclass(frozen=True)
class MissionCancelled(MissionEvent):
    """Terminal: cancelled at ``epoch`` (service only)."""

    epoch: int


@dataclass(frozen=True)
class MissionFailed(MissionEvent):
    """Terminal: an epoch raised (service only)."""

    epoch: int
    error: str


#: every concrete event type, by wire name.
EVENT_TYPES: dict[str, type[MissionEvent]] = {
    cls.__name__: cls
    for cls in (
        MissionAccepted,
        EpochStarted,
        EpochCompleted,
        VerdictChanged,
        CutEmerged,
        MissionCompleted,
        MissionCancelled,
        MissionFailed,
    )
}

#: terminal event types: after one of these, a mission stream is over.
TERMINAL_EVENTS = (MissionCompleted, MissionCancelled, MissionFailed)


def verdict_fields(verdict: Any) -> tuple[str, bool]:
    """Flatten any verdict shape to ``(decision, confirmed)`` strings.

    NECTAR verdicts carry ``decision``/``confirmed``; baseline verdicts
    *are* the decision (and are never confirmed).
    """
    decision = getattr(verdict, "decision", verdict)
    return (str(decision), bool(getattr(verdict, "confirmed", False)))


def event_payload(event: MissionEvent) -> dict:
    """One event as a JSON-ready object (``event`` names the type)."""
    payload: dict = {"event": type(event).__name__}
    payload.update(dataclasses.asdict(event))
    return payload


def event_from_payload(payload: Any) -> MissionEvent:
    """Rebuild an event from :func:`event_payload` output.

    Raises:
        ExperimentError: on unknown event types or mismatched fields.
    """
    if not isinstance(payload, dict) or "event" not in payload:
        raise ExperimentError(
            f'an event payload must be an object with an "event" key, '
            f"got {payload!r}"
        )
    kind = payload["event"]
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ExperimentError(
            f"unknown event type {kind!r}; known: {sorted(EVENT_TYPES)}"
        )
    fields = {key: value for key, value in payload.items() if key != "event"}
    try:
        return cls(**fields)
    except TypeError as exc:
        raise ExperimentError(f"malformed {kind} payload: {exc}") from None


# ----------------------------------------------------------------------
# Event derivation: one definition for streaming and batch
# ----------------------------------------------------------------------
def accepted_event(
    mission_id: str, mission: MissionSpec, label: str = ""
) -> MissionAccepted:
    """The stream's opening event for one mission."""
    return MissionAccepted(
        mission_id=mission_id,
        digest=mission_digest(mission),
        epochs=mission.trajectory.length,
        protocol=mission.protocol,
        label=label,
    )


def epoch_started_event(
    mission_id: str, epoch: int, delta: tuple[int, int]
) -> EpochStarted:
    """The pre-flight event of one epoch (``delta`` = added/removed)."""
    added, removed = delta
    return EpochStarted(
        mission_id=mission_id,
        epoch=epoch,
        edges_added=added,
        edges_removed=removed,
    )


def epoch_completed_events(
    mission_id: str, report: EpochReport, cut_already_emerged: bool
) -> Iterator[MissionEvent]:
    """The post-flight events of one epoch, in stream order.

    Always an :class:`EpochCompleted`; a :class:`VerdictChanged` when
    the report flags a flip; a :class:`CutEmerged` the first time
    ground truth says the topology is partitionable.
    """
    decision, confirmed = verdict_fields(report.verdict)
    yield EpochCompleted(
        mission_id=mission_id,
        epoch=report.epoch,
        danger=report.danger,
        decision=decision,
        confirmed=confirmed,
        changed=report.changed,
        escalated=report.escalated,
        mean_kb_sent=report.mean_kb_sent,
        rounds_executed=report.rounds_executed,
        partitionable=report.partitionable,
        correct_cut=report.correct_cut,
    )
    if report.changed:
        yield VerdictChanged(
            mission_id=mission_id,
            epoch=report.epoch,
            danger=report.danger,
            decision=decision,
            confirmed=confirmed,
        )
    if report.partitionable and not cut_already_emerged:
        yield CutEmerged(mission_id=mission_id, epoch=report.epoch)


def completion_event(mission_id: str, result: MissionResult) -> MissionCompleted:
    """The terminal event of a successfully-finished mission."""
    with_truth = (
        bool(result.reports) and result.reports[0].partitionable is not None
    )
    return MissionCompleted(
        mission_id=mission_id,
        epochs=result.epochs,
        emergence_epoch=result.emergence_epoch if with_truth else None,
        detection_epoch=result.detection_epoch if with_truth else None,
        detection_latency=result.detection_latency if with_truth else None,
        false_alarm_rate=result.false_alarm_rate if with_truth else None,
        mean_kb_per_epoch=result.mean_kb_per_epoch,
    )


def mission_events(
    mission_id: str, result: MissionResult, label: str = ""
) -> list[MissionEvent]:
    """Derive a finished mission's full event stream post hoc.

    The batch half of the equivalence contract: this sequence is
    event-for-event identical to what a :class:`~repro.service.fleet.
    FleetService` subscription streams for the same spec (the service
    emits the same helpers incrementally).  Used by ``repro mission
    --events`` so batch logs share the service's schema.
    """
    graphs = mission_graphs(result.mission)
    events: list[MissionEvent] = [
        accepted_event(mission_id, result.mission, label=label)
    ]
    cut_emerged = False
    for report in result.reports:
        events.append(
            epoch_started_event(
                mission_id, report.epoch, topology_delta(graphs, report.epoch)
            )
        )
        events.extend(
            epoch_completed_events(mission_id, report, cut_emerged)
        )
        cut_emerged = cut_emerged or bool(report.partitionable)
    events.append(completion_event(mission_id, result))
    return events


class EventLog:
    """Append-only JSONL event sink (``--events out.jsonl``).

    One event object per line, flushed immediately — the log is
    tail-able while a mission (or the service) is live.  Usable as a
    context manager.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        self.path = target
        self._stream: TextIO | None = target.open("w", encoding="utf-8")

    def emit(self, event: MissionEvent) -> None:
        """Write one event line (no-op after :meth:`close`)."""
        if self._stream is None:
            return
        self._stream.write(json.dumps(event_payload(event), sort_keys=True))
        self._stream.write("\n")
        self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_event_log(path: str | pathlib.Path) -> list[MissionEvent]:
    """Parse a JSONL event log back into typed events.

    Raises:
        ExperimentError: on unreadable files or malformed lines.
    """
    try:
        text = pathlib.Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ExperimentError(f"cannot read event log {path}: {exc}") from None
    events = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ExperimentError(
                f"event log {path} line {number}: {exc}"
            ) from None
        events.append(event_from_payload(payload))
    return events


__all__ = [
    "CutEmerged",
    "EVENT_TYPES",
    "EpochCompleted",
    "EpochStarted",
    "EventLog",
    "MissionAccepted",
    "MissionCancelled",
    "MissionCompleted",
    "MissionEvent",
    "MissionFailed",
    "TERMINAL_EVENTS",
    "VerdictChanged",
    "accepted_event",
    "completion_event",
    "epoch_completed_events",
    "epoch_started_event",
    "event_from_payload",
    "event_payload",
    "mission_events",
    "read_event_log",
    "verdict_fields",
]
