"""The long-lived fleet service (DESIGN.md §12).

:class:`FleetService` multiplexes many concurrent missions on one
asyncio event loop: :meth:`~FleetService.submit` registers a persistent
:class:`~repro.experiments.mission.MissionSession` per mission, each
:meth:`~FleetService.tick` steps a scheduler-selected window of them one
epoch forward, and every epoch publishes typed events
(:mod:`repro.service.events`) to bounded subscription streams.

Design decisions, and why:

* **Epochs step on worker threads, sequentially per tick.**  One epoch
  is CPU-bound synchronous work (it runs the full ``run_trial``
  pipeline, possibly an ``asyncio.run`` of its own on the async
  backend), so the loop hands it to ``asyncio.to_thread`` — the loop
  stays responsive for protocol I/O while the epoch flies — but awaits
  each step before starting the next.  Sequential stepping keeps the
  firehose event order a pure function of (submissions, scheduler seed,
  ticks) and serialises access to the shared caches; concurrency across
  missions comes from interleaving epochs, which is what a tick window
  bounds.  Verdicts are therefore bit-identical to batch
  :func:`~repro.experiments.mission.run_mission` by construction — both
  paths execute the same pure epoch tasks in the same per-mission
  order.
* **Backpressure sheds, never stalls.**  Subscription queues are
  bounded (``queue_limit``); when a slow consumer's queue is full the
  event is dropped *for that subscriber* and counted
  (:attr:`Subscription.shed`, surfaced per mission and service-wide in
  :meth:`~FleetService.status`).  The engine never waits on consumers:
  a stalled reader costs itself events, not the fleet its cadence.  An
  attached :class:`~repro.service.events.EventLog` is synchronous and
  unbounded — the durable log is complete even when live subscribers
  shed.
* **Shared artifacts.**  All sessions share the process-wide
  :data:`~repro.experiments.artifacts.ARTIFACTS` cache (thread-safe as
  of this PR), so concurrent missions over the same trajectory family
  reuse interned topologies, key pools and deployments; cancellation
  just stops stepping a session — the cache holds only pure,
  key-addressed values, so there is nothing to roll back.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator

from repro.errors import ExperimentError
from repro.experiments.artifacts import ARTIFACTS
from repro.experiments.mission import (
    MissionResult,
    MissionSession,
    MissionSpec,
    mission_digest,
    store_mission_result,
    write_mission_artifact,
)
from repro.service.events import (
    EventLog,
    MissionCancelled,
    MissionEvent,
    MissionFailed,
    accepted_event,
    completion_event,
    epoch_completed_events,
    epoch_started_event,
)
from repro.service.scheduler import (
    ACTIVE,
    CANCELLED,
    COMPLETED,
    FAILED,
    MissionRecord,
    Scheduler,
)

#: sentinel closing a subscription stream.
_CLOSE = object()


class Subscription:
    """One bounded event stream (per-mission, or the firehose).

    Async-iterable: ``async for event in subscription`` yields events
    until the stream closes (mission terminal event published, or
    service shutdown for the firehose).  When the queue is full the
    publisher drops the event for this subscriber and increments
    :attr:`shed` — see the backpressure policy in the module docstring.
    """

    def __init__(self, mission_id: str | None, limit: int) -> None:
        #: the mission this stream follows; ``None`` = firehose.
        self.mission_id = mission_id
        #: events dropped because this subscriber was slow.
        self.shed = 0
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=max(0, limit))
        self._closed = False

    def _offer(self, event: MissionEvent) -> bool:
        """Publisher side: enqueue or shed.  True when delivered."""
        if self._closed:
            return True  # a closed stream consumes nothing
        try:
            self._queue.put_nowait(event)
            return True
        except asyncio.QueueFull:
            self.shed += 1
            return False

    def _close(self) -> None:
        """Publisher side: end the stream after queued events drain."""
        if self._closed:
            return
        self._closed = True
        try:
            self._queue.put_nowait(_CLOSE)
        except asyncio.QueueFull:
            # Full queue: shed the oldest queued event to guarantee the
            # close sentinel lands (consumers must always terminate).
            try:
                self._queue.get_nowait()
                self.shed += 1
            except asyncio.QueueEmpty:  # pragma: no cover - race-free loop
                pass
            self._queue.put_nowait(_CLOSE)

    def __aiter__(self) -> AsyncIterator[MissionEvent]:
        return self

    async def __anext__(self) -> MissionEvent:
        item = await self._queue.get()
        if item is _CLOSE:
            raise StopAsyncIteration
        return item

    def drain_nowait(self) -> list[MissionEvent]:
        """Every currently-queued event, without awaiting (tests/CLI)."""
        events = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return events
            if item is _CLOSE:
                return events
            events.append(item)


class FleetService:
    """A registry of live missions multiplexed on one event loop.

    Args:
        tick_interval: seconds slept after each tick (0 = free-running;
            the CLI maps ``--tick-ms``).
        max_concurrency: tick-window bound — at most this many missions
            step one epoch per tick.
        queue_limit: per-subscription event-queue bound (0 = unbounded;
            see the backpressure policy).
        seed: scheduler shuffle seed (``None`` = pure round-robin).
        with_truth: compute per-epoch ground truth (required for the
            temporal metrics in ``MissionCompleted``; matches batch
            ``run_mission``'s default).
        event_log: optional synchronous JSONL sink receiving every
            published event (``repro serve --events``).
    """

    def __init__(
        self,
        tick_interval: float = 0.0,
        max_concurrency: int = 8,
        queue_limit: int = 256,
        seed: int | None = 0,
        with_truth: bool = True,
        event_log: EventLog | None = None,
    ) -> None:
        if max_concurrency < 1:
            raise ExperimentError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        if queue_limit < 0:
            raise ExperimentError(
                f"queue_limit cannot be negative, got {queue_limit}"
            )
        self.tick_interval = tick_interval
        self.max_concurrency = max_concurrency
        self.queue_limit = queue_limit
        self.with_truth = with_truth
        self._scheduler = Scheduler(seed=seed)
        self._subscriptions: list[Subscription] = []
        self._event_log = event_log
        self._id_counter = 1
        self._stopped = False
        #: events dropped across all subscriptions (status surfaces it).
        self.events_shed = 0

    # ------------------------------------------------------------------
    # Registry operations
    # ------------------------------------------------------------------
    def submit(
        self,
        mission: MissionSpec,
        label: str = "",
        artifact: str | None = None,
    ) -> str:
        """Register one mission; returns its service-assigned id.

        The session is built eagerly (trajectory construction, the
        adversary placement pre-pass), so an invalid spec fails the
        submit rather than the first tick.
        """
        if self._stopped:
            raise ExperimentError("the service has shut down")
        session = MissionSession(mission, with_truth=self.with_truth)
        mission_id = f"m{self._id_counter:04d}"
        self._id_counter += 1
        record = MissionRecord(
            mission_id=mission_id,
            session=session,
            label=label,
            artifact=artifact,
        )
        self._scheduler.add(record)
        self._publish(accepted_event(mission_id, mission, label=label))
        return mission_id

    def cancel(self, mission_id: str) -> bool:
        """Stop stepping a live mission.  True when it was active.

        The shared artifact cache needs no cleanup: it holds pure,
        content-addressed values only, so a half-flown mission leaves
        it exactly as consistent as a finished one (pinned by
        ``tests/test_service.py``).
        """
        record = self._scheduler.get(mission_id)
        if record is None or record.state != ACTIVE:
            return False
        record.state = CANCELLED
        self._publish(
            MissionCancelled(mission_id=mission_id, epoch=record.session.epoch)
        )
        self._close_mission_subscriptions(mission_id)
        return True

    def subscribe(self, mission_id: str | None = None) -> Subscription:
        """A new event stream: one mission's, or the firehose (None).

        Subscribing to an already-finished mission yields an
        immediately-closed stream.
        """
        if mission_id is not None and mission_id not in self._scheduler:
            raise ExperimentError(f"unknown mission {mission_id!r}")
        subscription = Subscription(mission_id, self.queue_limit)
        self._subscriptions.append(subscription)
        record = (
            None if mission_id is None else self._scheduler.get(mission_id)
        )
        if self._stopped or (record is not None and record.done):
            subscription._close()
        return subscription

    def result(self, mission_id: str) -> MissionResult | None:
        """A completed mission's result (None while live/cancelled)."""
        record = self._scheduler.get(mission_id)
        return None if record is None else record.result

    def status(self, mission_id: str | None = None) -> dict:
        """JSON-ready service (or single-mission) status.

        Includes the shed counters — the visible face of the
        backpressure policy — and the shared artifact-cache hit rate.
        """
        if mission_id is not None:
            record = self._scheduler.get(mission_id)
            if record is None:
                raise ExperimentError(f"unknown mission {mission_id!r}")
            return self._record_status(record)
        states = {ACTIVE: 0, COMPLETED: 0, CANCELLED: 0, FAILED: 0}
        missions = {}
        for record in self._scheduler.records():
            states[record.state] += 1
            missions[record.mission_id] = self._record_status(record)
        return {
            "ticks": self._scheduler.ticks,
            "missions": missions,
            "events_shed": self.events_shed,
            "artifact_hit_rate": ARTIFACTS.stats.hit_rate(),
            **states,
        }

    @staticmethod
    def _record_status(record: MissionRecord) -> dict:
        status = {
            "state": record.state,
            "epoch": record.session.epoch,
            "epochs": record.session.total_epochs,
            "label": record.label,
            "digest": mission_digest(record.session.mission),
            "events_shed": record.events_shed,
        }
        if record.error:
            status["error"] = record.error
        return status

    def has_active(self) -> bool:
        return self._scheduler.has_active()

    # ------------------------------------------------------------------
    # The engine
    # ------------------------------------------------------------------
    async def tick(self) -> int:
        """Run one scheduler tick; returns epochs stepped.

        Selects up to ``max_concurrency`` missions (fair, seeded —
        :class:`~repro.service.scheduler.Scheduler`) and steps each one
        epoch on a worker thread, publishing the epoch's events as it
        lands.  Cancellation observed mid-step suppresses the stale
        epoch's events (the session state is still advanced — epochs
        are pure, so the extra work is waste, not corruption).
        """
        window = self._scheduler.select(self.max_concurrency)
        stepped = 0
        for record in window:
            if record.state != ACTIVE:
                continue  # cancelled earlier in this very tick
            session = record.session
            epoch = session.epoch
            self._publish(
                epoch_started_event(
                    record.mission_id, epoch, session.topology_delta(epoch)
                )
            )
            try:
                report = await asyncio.to_thread(session.step)
            except Exception as exc:  # noqa: BLE001 - any epoch failure
                record.state = FAILED
                record.error = f"{type(exc).__name__}: {exc}"
                self._publish(
                    MissionFailed(
                        mission_id=record.mission_id,
                        epoch=epoch,
                        error=record.error,
                    )
                )
                self._close_mission_subscriptions(record.mission_id)
                continue
            stepped += 1
            if record.state != ACTIVE:
                continue  # cancelled while the epoch was in flight
            for event in epoch_completed_events(
                record.mission_id, report, record.cut_emerged
            ):
                self._publish(event)
            record.cut_emerged = record.cut_emerged or bool(report.partitionable)
            if session.done:
                self._complete(record)
        if self.tick_interval > 0:
            await asyncio.sleep(self.tick_interval)
        else:
            await asyncio.sleep(0)  # always yield to protocol I/O
        return stepped

    def _complete(self, record: MissionRecord) -> None:
        record.state = COMPLETED
        result = record.session.result()
        record.result = result
        # Seed the per-process memo: a later batch ask (timeline,
        # measure cell) for the same spec is now free.
        store_mission_result(result.mission, result)
        if record.artifact:
            # Written before MissionCompleted is published, so a
            # consumer reacting to the event can read the artefact.
            write_mission_artifact(result, record.artifact)
        self._publish(completion_event(record.mission_id, result))
        self._close_mission_subscriptions(record.mission_id)

    async def drain(self) -> None:
        """Tick until no active mission remains."""
        while self._scheduler.has_active():
            await self.tick()

    def shutdown(self) -> None:
        """Cancel live missions and close every stream (incl. firehose)."""
        for record in list(self._scheduler.records()):
            if record.state == ACTIVE:
                self.cancel(record.mission_id)
        for subscription in self._subscriptions:
            subscription._close()
        self._stopped = True

    # ------------------------------------------------------------------
    # Event publication
    # ------------------------------------------------------------------
    def _publish(self, event: MissionEvent) -> None:
        if self._event_log is not None:
            self._event_log.emit(event)
        record = self._scheduler.get(event.mission_id)
        for subscription in self._subscriptions:
            if (
                subscription.mission_id is not None
                and subscription.mission_id != event.mission_id
            ):
                continue
            if not subscription._offer(event):
                self.events_shed += 1
                if record is not None:
                    record.events_shed += 1

    def _close_mission_subscriptions(self, mission_id: str) -> None:
        for subscription in self._subscriptions:
            if subscription.mission_id == mission_id:
                subscription._close()


__all__ = ["FleetService", "Subscription"]
