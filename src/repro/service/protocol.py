"""NDJSON request/event protocol for ``repro serve`` (DESIGN.md §12.4).

One line per message, both directions.  Requests are objects with an
``op`` key::

    {"op": "submit", "mission": {...}, "label": "...", "artifact": "..."}
    {"op": "status"} | {"op": "status", "mission_id": "m0001"}
    {"op": "cancel", "mission_id": "m0001"}
    {"op": "drain"}     # block until no mission is active
    {"op": "ping"}
    {"op": "shutdown"}

Responses echo ``{"type": "response", "op": ..., "ok": true/false, ...}``;
mission events from the firehose are interleaved on the same stream as
``{"type": "event", "event": "EpochCompleted", ...}`` lines.  Keys are
sorted in every emitted line, so transcripts are byte-stable.

The transport is either stdio (``repro serve``) or a unix socket
(``repro serve --socket PATH``).  Either way there is exactly one
ticker: the driver task below.  The ``drain`` op therefore only *polls*
``has_active`` — it never ticks itself — so interleaving stays a pure
function of (submission order, scheduler seed), regardless of how many
clients ask questions.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import sys
import threading
from typing import AsyncIterator, Awaitable, Callable

from repro.errors import ExperimentError, ReproError
from repro.experiments.mission import MissionSpec
from repro.service.events import event_payload
from repro.service.fleet import FleetService

#: polling cadence of the drain op (it never ticks; the driver does).
_DRAIN_POLL_SECONDS = 0.01
#: driver sleep while no mission is active.
_IDLE_SLEEP_SECONDS = 0.02


async def handle_request(service: FleetService, payload: object) -> dict:
    """Execute one request object against the service.

    Returns the JSON-ready response object.  Anything malformed becomes
    an ``ok: false`` response rather than an exception — one bad client
    line must not take the daemon down.
    """
    if not isinstance(payload, dict) or "op" not in payload:
        return {
            "type": "response",
            "ok": False,
            "error": 'a request must be an object with an "op" key',
        }
    op = payload["op"]
    try:
        if op == "submit":
            mission = MissionSpec.from_payload(payload.get("mission"))
            mission_id = service.submit(
                mission,
                label=str(payload.get("label", "")),
                artifact=payload.get("artifact"),
            )
            return {
                "type": "response",
                "op": op,
                "ok": True,
                "mission_id": mission_id,
            }
        if op == "status":
            return {
                "type": "response",
                "op": op,
                "ok": True,
                "status": service.status(payload.get("mission_id")),
            }
        if op == "cancel":
            mission_id = payload.get("mission_id")
            if not isinstance(mission_id, str):
                raise ExperimentError('cancel requires a "mission_id" string')
            return {
                "type": "response",
                "op": op,
                "ok": True,
                "cancelled": service.cancel(mission_id),
            }
        if op == "drain":
            # Poll only — the serve() driver is the sole ticker, which
            # keeps event interleaving independent of client chatter.
            while service.has_active():
                await asyncio.sleep(_DRAIN_POLL_SECONDS)
            return {"type": "response", "op": op, "ok": True}
        if op == "ping":
            return {"type": "response", "op": op, "ok": True}
        if op == "shutdown":
            return {"type": "response", "op": op, "ok": True, "stop": True}
        raise ExperimentError(f"unknown op {op!r}")
    except ReproError as exc:
        return {"type": "response", "op": op, "ok": False, "error": str(exc)}


def _encode(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


async def _next_line(
    iterator, stop_event: asyncio.Event | None
) -> str | None:
    """The next line, or None on EOF or a requested stop.

    With a ``stop_event``, the read races the event (a SIGTERM must be
    able to interrupt a blocked read); the losing task is cancelled and
    awaited so nothing leaks into the loop's shutdown.
    """
    if stop_event is None:
        try:
            return await iterator.__anext__()
        except StopAsyncIteration:
            return None
    if stop_event.is_set():
        return None
    line_task = asyncio.ensure_future(iterator.__anext__())
    stop_task = asyncio.ensure_future(stop_event.wait())
    done, _pending = await asyncio.wait(
        {line_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
    )
    if line_task not in done:
        line_task.cancel()
        with contextlib.suppress(asyncio.CancelledError, StopAsyncIteration):
            await line_task
        return None
    stop_task.cancel()
    with contextlib.suppress(asyncio.CancelledError):
        await stop_task
    try:
        return line_task.result()
    except StopAsyncIteration:
        return None


async def serve(
    service: FleetService,
    lines: AsyncIterator[str],
    write: Callable[[str], Awaitable[None]],
    on_eof: str = "drain",
    stop_event: asyncio.Event | None = None,
) -> None:
    """Run the full protocol loop over one line stream.

    Three concurrent concerns on one loop:

    * the **driver** — the only place :meth:`FleetService.tick` is
      called; idles cheaply when no mission is active;
    * the **firehose pump** — forwards every service event to ``write``;
    * the **request loop** — reads ``lines`` until EOF, a shutdown op,
      or ``stop_event``.

    ``on_eof`` decides what EOF means: ``"drain"`` (default) finishes
    every in-flight mission before exiting — so piping a batch of
    submit lines in behaves like a job queue — while ``"stop"`` shuts
    down immediately.

    ``stop_event`` is the graceful-drain path (DESIGN.md §14.5): the
    CLI sets it from SIGINT/SIGTERM.  When it fires, the request loop
    stops reading, the driver finishes the epoch in flight (ticks are
    never interrupted mid-epoch), and ``shutdown()`` cancels every
    still-active mission with a ``MissionCancelled`` event that the
    pump delivers before the stream closes — interrupted work is
    reported, never dropped silently.
    """
    if on_eof not in ("drain", "stop"):
        raise ExperimentError(f'on_eof must be "drain" or "stop", got {on_eof!r}')
    stopping = asyncio.Event()

    async def driver() -> None:
        while not stopping.is_set():
            if service.has_active():
                await service.tick()
            else:
                await asyncio.sleep(_IDLE_SLEEP_SECONDS)

    firehose = service.subscribe()

    async def pump() -> None:
        async for event in firehose:
            await write(_encode({"type": "event", **event_payload(event)}))

    driver_task = asyncio.create_task(driver())
    pump_task = asyncio.create_task(pump())
    try:
        iterator = lines.__aiter__()
        while True:
            line = await _next_line(iterator, stop_event)
            if line is None:
                break
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                await write(
                    _encode(
                        {"type": "response", "ok": False, "error": f"bad JSON: {exc}"}
                    )
                )
                continue
            response = await handle_request(service, payload)
            await write(_encode(response))
            if response.get("stop"):
                return
        if (
            on_eof == "drain"
            and (stop_event is None or not stop_event.is_set())
        ):
            while service.has_active():
                await asyncio.sleep(_DRAIN_POLL_SECONDS)
    finally:
        stopping.set()
        await driver_task
        service.shutdown()  # closes the firehose; the pump then ends
        await pump_task


async def serve_stdio(
    service: FleetService,
    on_eof: str = "drain",
    stop_event: asyncio.Event | None = None,
) -> None:
    """The protocol loop over this process's stdin/stdout.

    stdin is read on a *daemon* thread feeding an asyncio queue, not
    through ``run_in_executor``: a graceful stop must be able to
    abandon a blocked ``readline`` without the executor's non-daemon
    worker thread then holding the interpreter open at exit.
    """
    loop = asyncio.get_running_loop()
    incoming: asyncio.Queue = asyncio.Queue()

    def _reader() -> None:
        while True:
            line = sys.stdin.readline()
            try:
                loop.call_soon_threadsafe(incoming.put_nowait, line or None)
            except RuntimeError:
                return  # loop already closed (stopped mid-read)
            if not line:
                return  # EOF
    threading.Thread(target=_reader, name="serve-stdin", daemon=True).start()

    async def lines() -> AsyncIterator[str]:
        while True:
            line = await incoming.get()
            if line is None:
                return  # EOF
            yield line

    async def write(text: str) -> None:
        sys.stdout.write(text + "\n")
        sys.stdout.flush()

    await serve(service, lines(), write, on_eof=on_eof, stop_event=stop_event)


async def serve_socket(
    service: FleetService,
    path: str,
    stop_event: asyncio.Event | None = None,
) -> None:
    """The protocol loop over a unix socket, for one client session.

    The connection gets the full protocol (requests + firehose); the
    daemon exits when the client disconnects, sends
    ``{"op": "shutdown"}``, or ``stop_event`` fires (the signal path —
    also honoured while still waiting for a client to connect).
    """
    done = asyncio.Event()

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        async def lines() -> AsyncIterator[str]:
            while True:
                raw = await reader.readline()
                if not raw:
                    return
                yield raw.decode("utf-8")

        async def write(text: str) -> None:
            writer.write(text.encode("utf-8") + b"\n")
            await writer.drain()

        try:
            await serve(service, lines(), write, on_eof="stop", stop_event=stop_event)
        finally:
            writer.close()
            done.set()

    server = await asyncio.start_unix_server(handle, path=path)
    async with server:
        waiters = [asyncio.create_task(done.wait())]
        if stop_event is not None:
            waiters.append(asyncio.create_task(stop_event.wait()))
        _done, pending = await asyncio.wait(
            waiters, return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task


__all__ = ["handle_request", "serve", "serve_socket", "serve_stdio"]
