"""Command-line interface.

The subcommands cover the everyday uses of the library::

    python -m repro check --family harary --n 20 --k 4 --t 1
    python -m repro check --drone --n 20 --distance 3.0 --radius 1.8 --t 2
    python -m repro figure fig8 --full --out out/
    python -m repro sweep fig3 --set n=40 --set ks=2,4,6 --workers 4
    python -m repro sweep fig3 --set env.loss_rate=0.4 --csv rows.csv
    python -m repro sweep fig3 --set env.artifacts=true --artifact-store benchmarks/out/
    python -m repro mission partition-detection --set drifts=0.5,1.0 --timeline
    python -m repro mission mtg-vs-nectar-detection --set env.bandwidth=2 --set env.channel=budgeted
    python -m repro mission detection-under-deception --events out/events.jsonl --mission-out out/mission.json
    python -m repro serve --events out/serve.jsonl < submit-lines.ndjson
    python -m repro sweep fig3 --backend queue --queue /shared/q
    python -m repro fabric worker --queue /shared/q --once
    python -m repro fabric status --queue /shared/q
    python -m repro bench --smoke --compare benchmarks/baselines
    python -m repro diff out/fig3-abc.json out/fig3-def.json
    python -m repro diff out-baseline/ out-candidate/
    python -m repro topologies --n 24 --k 4
    python -m repro attack --n 21 --t 2

``check`` answers the operational question — is this deployment safe
against t Byzantine nodes? — with NECTAR's verdict and the run's
cost.  ``figure`` regenerates one paper artefact.  ``sweep`` runs any
registered figure with declarative axis overrides (``--set``) or a
JSON spec file, persisting results keyed by a stable spec hash;
``--set env.<field>=value`` addresses the environment layer (channel
model, backend, validation, signature scheme, artifact cache —
DESIGN.md §8-9) on every sweep.  ``mission`` runs the
detection-over-time scenarios of the mission layer (DESIGN.md §10) —
the same declarative sweep machinery, plus an optional per-epoch
verdict timeline (``--timeline`` streams, ``--events`` logs the typed
event schema shared with the daemon).  ``serve`` boots the long-lived
fleet daemon (DESIGN.md §12): missions submitted as NDJSON lines are
multiplexed on one event loop and streamed back as typed epoch
events, bit-identical to their batch runs.  ``sweep --backend queue``
runs the same sweep through the distributed fabric (DESIGN.md §13): a
durable filesystem work queue shared with ``fabric worker``
processes, resumable after any interruption and row-identical to the
local path; ``fabric status`` inspects it.  ``bench`` runs the registered perf
scenarios headlessly and emits ``BENCH_*.json`` ledgers (wall times,
speedups, cache hit rates), optionally comparing them against
committed baselines (exit 1 on regression).  ``diff`` compares two
archived artefacts row by row — or two whole artefact directories,
ledgers included — with exit 1 on divergence.  ``topologies``
describes every built-in family.  ``attack`` replays the Fig. 8
scenario once and prints who got fooled.

Both ``figure`` and ``sweep`` are thin shells over the declarative
spec registry (:data:`repro.experiments.spec.FIGURE_SPECS`): every
figure id resolves to a :class:`~repro.experiments.spec.SweepSpec`
whose capabilities — worker sharding, paper-scale presets, wire
profiles — are data, not function-signature sniffing.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import Sequence

from repro.errors import ExperimentError
from repro.experiments.diff import diff_artefact_directories, diff_artefacts
from repro.experiments.persistence import (
    dump_figure_csv,
    dump_figure_json,
    save_figure,
    spec_digest,
)
from repro.experiments.artifacts import ARTIFACTS
from repro.experiments.mission import (
    MISSION_FIGURES,
    EpochReport,
    MissionSession,
    MissionSpec,
    cached_mission_result,
    mission_digest,
    mission_result,
    store_mission_result,
    write_mission_artifact,
)
from repro.experiments.report import FigureData
from repro.experiments.runner import run_trial
from repro.experiments.scenarios import TOPOLOGY_FAMILIES, build_topology
from repro.experiments.spec import (
    FIGURE_SPECS,
    SWEEP_ENGINE,
    ResolvedSweep,
    attack_rates,
    environment_axis_names,
)
from repro.fabric import (
    FabricQueue,
    QUEUE_ENV,
    QueueUnreachable,
    job_id_of,
    run_sweep_via_queue,
    run_worker,
)
from repro.graphs.analysis import summarize
from repro.graphs.generators.drone import drone_graph
from repro.types import Decision


def _worker_count(value: str) -> int:
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"worker count cannot be negative, got {count}"
        )
    return count


def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by the ``figure`` and ``sweep`` commands."""
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at the paper's scale (same as REPRO_FULL=1)",
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="AXIS=VALUE",
        help=(
            "override one sweep axis, e.g. --set n=40 --set ks=2,4,6; "
            "repeatable (comma-separated values become sequences). "
            "env.<field> axes address the environment layer on every "
            "sweep, e.g. --set env.loss_rate=0.4 --set env.backend=async"
        ),
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help=(
            "persist the FigureData JSON; a directory (or trailing /) "
            "stores a spec-hash-keyed file, anything else is the exact "
            "output path"
        ),
    )
    parser.add_argument(
        "--csv",
        metavar="PATH",
        help="also export the rows as flat CSV (one row per series point)",
    )
    parser.add_argument(
        "--workers",
        type=_worker_count,
        default=None,
        metavar="N",
        help=(
            "shard sweep trials over N worker processes; 0 means one per "
            "CPU (default: the REPRO_WORKERS env var, else serial). "
            "Results are identical for any worker count."
        ),
    )
    parser.add_argument(
        "--artifact-store",
        metavar="DIR",
        help=(
            "opt-in on-disk artifact cache (DESIGN.md §9): load/save one "
            "snapshot per resolved spec under DIR (conventionally "
            "benchmarks/out/). Only consulted when cells enable "
            "env.artifacts, e.g. --set env.artifacts=true."
        ),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NECTAR: Byzantine-resilient partition detection (ICDCS 2024)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser(
        "check", help="run NECTAR on a topology and print the verdict"
    )
    check.add_argument(
        "--family",
        choices=sorted(TOPOLOGY_FAMILIES),
        help="built-in topology family (see `topologies`)",
    )
    check.add_argument("--drone", action="store_true", help="drone scenario instead")
    check.add_argument("--n", type=int, required=True, help="number of nodes")
    check.add_argument("--k", type=int, default=4, help="connectivity parameter")
    check.add_argument("--t", type=int, default=1, help="Byzantine budget")
    check.add_argument("--distance", type=float, default=0.0, help="drone barycenter distance")
    check.add_argument("--radius", type=float, default=1.8, help="drone radio range")
    check.add_argument("--seed", type=int, default=0)

    figure = commands.add_parser("figure", help="regenerate one paper artefact")
    figure.add_argument("name", choices=sorted(FIGURE_SPECS))
    figure.add_argument(
        "--spark", action="store_true", help="also print unicode sparklines"
    )
    _add_sweep_options(figure)

    sweep = commands.add_parser(
        "sweep",
        help="run a registered sweep with axis overrides or a JSON spec file",
    )
    sweep.add_argument(
        "name",
        nargs="?",
        choices=sorted(FIGURE_SPECS),
        help="figure id (omit when using --spec or --list)",
    )
    sweep.add_argument(
        "--spec",
        metavar="FILE",
        help=(
            'JSON spec file: {"figure": id, "scale": "reduced"|"paper", '
            '"set": {axis: value, ...}, "seed_mode": "index"|"hashed", '
            '"base_seed": int}'
        ),
    )
    sweep.add_argument(
        "--list", action="store_true", help="list registered sweeps and exit"
    )
    sweep.add_argument(
        "--seed-mode",
        choices=("index", "hashed"),
        default=None,
        help=(
            "per-trial seed policy: index (trial number, the pinned "
            "default) or hashed (independent seeds via trial_seeds)"
        ),
    )
    sweep.add_argument(
        "--base-seed",
        type=int,
        default=None,
        help="base seed for --seed-mode hashed (default 0)",
    )
    sweep.add_argument(
        "--backend",
        choices=("local", "queue"),
        default="local",
        help=(
            "execution backend: local (in-process, default) or queue "
            "(the durable fabric queue, DESIGN.md §13 — resumable, "
            "shared with repro fabric worker processes)"
        ),
    )
    sweep.add_argument(
        "--queue",
        metavar="DIR",
        default=None,
        help=(
            "fabric queue directory for --backend queue (default: the "
            f"{QUEUE_ENV} env var)"
        ),
    )
    sweep.add_argument(
        "--no-work",
        action="store_true",
        help=(
            "queue backend only: submit, wait and collect without "
            "claiming shards locally — leave every shard to the worker "
            "fleet (pure-coordinator mode, used by the chaos CI job)"
        ),
    )
    _add_sweep_options(sweep)

    mission = commands.add_parser(
        "mission",
        help=(
            "run a detection-over-time mission scenario (DESIGN.md §10): "
            "a sweep over evolving-topology missions, with an optional "
            "per-epoch verdict timeline"
        ),
    )
    mission.add_argument(
        "name",
        nargs="?",
        choices=sorted(MISSION_FIGURES),
        help="mission scenario id (omit with --list)",
    )
    mission.add_argument(
        "--list", action="store_true", help="list mission scenarios and exit"
    )
    mission.add_argument(
        "--timeline",
        action="store_true",
        help=(
            "also replay the first cell's mission serially and print its "
            "per-epoch verdict stream"
        ),
    )
    mission.add_argument(
        "--seed-mode",
        choices=("index", "hashed"),
        default=None,
        help="per-trial seed policy (mission scenarios default to hashed)",
    )
    mission.add_argument(
        "--base-seed",
        type=int,
        default=None,
        help="base seed for --seed-mode hashed (default 0)",
    )
    mission.add_argument(
        "--events",
        metavar="PATH",
        help=(
            "write the first cell's mission as a JSONL event log "
            "(the same schema repro serve streams)"
        ),
    )
    mission.add_argument(
        "--mission-out",
        metavar="PATH",
        help=(
            "write the first cell's mission verdict-stream artefact "
            "(repro diff-able against a serve-produced one)"
        ),
    )
    mission.add_argument(
        "--mission-spec",
        metavar="PATH",
        help=(
            "write the first cell's mission spec as JSON (the payload a "
            "repro serve submit line takes)"
        ),
    )
    _add_sweep_options(mission)

    serve = commands.add_parser(
        "serve",
        help=(
            "long-lived fleet daemon (DESIGN.md §12): submit missions and "
            "stream their epochs as NDJSON events over stdio or a unix "
            "socket"
        ),
    )
    serve.add_argument(
        "--socket",
        metavar="PATH",
        help="listen on a unix socket instead of speaking NDJSON on stdio",
    )
    serve.add_argument(
        "--tick-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="epoch cadence: sleep MS milliseconds after each tick (default 0)",
    )
    serve.add_argument(
        "--max-concurrency",
        type=int,
        default=8,
        metavar="N",
        help="missions stepped per tick (default 8)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        metavar="N",
        help=(
            "per-subscription event-queue bound; slow consumers shed "
            "events past it (default 256, 0 = unbounded)"
        ),
    )
    serve.add_argument(
        "--scheduler-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="tick-window shuffle seed (interleaving is reproducible per seed)",
    )
    serve.add_argument(
        "--events",
        metavar="PATH",
        help="also append every event to a JSONL log (never sheds)",
    )
    serve.add_argument(
        "--on-eof",
        choices=("drain", "stop"),
        default="drain",
        help=(
            "stdio mode: on stdin EOF, finish in-flight missions (drain, "
            "the default) or shut down immediately (stop)"
        ),
    )

    fabric = commands.add_parser(
        "fabric",
        help=(
            "distributed sweep fabric (DESIGN.md §13): run a worker "
            "against a queue directory, or inspect its jobs"
        ),
    )
    fabric_commands = fabric.add_subparsers(dest="fabric_command", required=True)
    fabric_worker = fabric_commands.add_parser(
        "worker",
        help=(
            "claim and execute shards from the queue until drained "
            "(scale-out = start more of these; killing one is safe)"
        ),
    )
    fabric_worker.add_argument(
        "--queue",
        metavar="DIR",
        default=None,
        help=f"queue directory (default: the {QUEUE_ENV} env var)",
    )
    fabric_worker.add_argument(
        "--worker-id",
        metavar="ID",
        default=None,
        help="lease/journal identity (default: host+pid derived)",
    )
    fabric_worker.add_argument(
        "--once",
        action="store_true",
        help="exit after one pass finds nothing claimable (CI drain mode)",
    )
    fabric_worker.add_argument(
        "--poll-ms",
        type=float,
        default=200.0,
        metavar="MS",
        help="idle poll interval in milliseconds (default 200)",
    )
    fabric_worker.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit after this many seconds without claiming anything",
    )
    fabric_worker.add_argument(
        "--max-shards",
        type=int,
        default=None,
        metavar="N",
        help="stop after executing N shards (bounded-worker test mode)",
    )
    fabric_supervise = fabric_commands.add_parser(
        "supervise",
        help=(
            "spawn and supervise a fleet of worker subprocesses: "
            "heartbeat watching, restart with backoff, crash-loop "
            "detection, graceful drain on SIGTERM/^C (DESIGN.md §14.4)"
        ),
    )
    fabric_supervise.add_argument(
        "--queue",
        metavar="DIR",
        default=None,
        help=f"queue directory (default: the {QUEUE_ENV} env var)",
    )
    fabric_supervise.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="worker subprocesses to keep alive (default 2)",
    )
    fabric_supervise.add_argument(
        "--max-restarts",
        type=int,
        default=None,
        metavar="N",
        help=(
            "restarts per worker slot before declaring a crash-loop "
            "and leaving it down (default 5)"
        ),
    )
    fabric_supervise.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill a live worker whose heartbeat is older (default 60)",
    )
    fabric_supervise.add_argument(
        "--drain",
        action="store_true",
        help=(
            "exit once every job in the queue is complete (CI mode); "
            "without it the supervisor runs until signalled"
        ),
    )
    fabric_supervise.add_argument(
        "--worker-idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="pass --idle-timeout through to each spawned worker",
    )
    fabric_status = fabric_commands.add_parser(
        "status",
        help="print per-job shard progress for a queue directory",
    )
    fabric_status.add_argument(
        "job",
        nargs="?",
        default=None,
        help="job id to inspect (default: every job in the queue)",
    )
    fabric_status.add_argument(
        "--queue",
        metavar="DIR",
        default=None,
        help=f"queue directory (default: the {QUEUE_ENV} env var)",
    )
    fabric_status.add_argument(
        "--json",
        action="store_true",
        help=(
            "machine-readable output: per-job shard/stale/quarantine "
            "counters plus worker heartbeats and supervisor state"
        ),
    )

    bench = commands.add_parser(
        "bench",
        help=(
            "run the registered perf scenarios headlessly and emit "
            "BENCH_*.json ledgers (exit 1 on regression with --compare)"
        ),
    )
    bench.add_argument(
        "names",
        nargs="*",
        metavar="SCENARIO",
        help="scenarios to run (default: all registered)",
    )
    bench.add_argument(
        "--list", action="store_true", help="list registered scenarios and exit"
    )
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="run the reduced smoke presets (what CI affords)",
    )
    bench.add_argument(
        "--out",
        metavar="DIR",
        default="benchmarks/out",
        help="ledger output directory (default: benchmarks/out)",
    )
    bench.add_argument(
        "--compare",
        metavar="DIR",
        help=(
            "compare each fresh ledger against the committed baseline "
            "BENCH_<scenario>.json in DIR; exit 1 on any regression"
        ),
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        metavar="FRAC",
        help=(
            "relative speedup-regression tolerance for --compare "
            "(default 0.2 = fail on >20%% regression)"
        ),
    )
    bench.add_argument(
        "--workers",
        type=_worker_count,
        default=None,
        metavar="N",
        help="shard the benched sweeps over N worker processes",
    )

    diff = commands.add_parser(
        "diff",
        help=(
            "compare two archived artefacts, or two whole artefact "
            "directories, row by row (exit 1 on divergence)"
        ),
    )
    diff.add_argument(
        "artefact_a", metavar="A", help="baseline figure JSON (or directory)"
    )
    diff.add_argument(
        "artefact_b", metavar="B", help="candidate figure JSON (or directory)"
    )
    diff.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        metavar="EPS",
        help=(
            "absolute slack on mean/CI comparisons (default 0.0: "
            "bit-identical rows); also the speedup tolerance for bench "
            "ledgers met inside directories"
        ),
    )

    drone_map = commands.add_parser(
        "map", help="render a drone deployment as an ASCII map"
    )
    drone_map.add_argument("--n", type=int, default=20)
    drone_map.add_argument("--distance", type=float, default=3.0)
    drone_map.add_argument("--radius", type=float, default=1.2)
    drone_map.add_argument("--seed", type=int, default=0)

    topologies = commands.add_parser(
        "topologies", help="describe every built-in topology family"
    )
    topologies.add_argument("--n", type=int, default=24)
    topologies.add_argument("--k", type=int, default=4)

    attack = commands.add_parser(
        "attack", help="replay the Fig. 8 bridge attack once"
    )
    attack.add_argument("--n", type=int, default=21)
    attack.add_argument("--t", type=int, default=2)
    attack.add_argument("--seed", type=int, default=0)
    return parser


def _run_check(args: argparse.Namespace) -> int:
    if args.drone:
        graph = drone_graph(args.n, args.distance, args.radius, seed=args.seed)
        label = f"drone(n={args.n}, d={args.distance}, radius={args.radius})"
    elif args.family:
        graph = build_topology(args.family, args.n, args.k, seed=args.seed)
        label = f"{args.family}(n={args.n}, k={args.k})"
    else:
        print("error: pass --family or --drone")
        return 2
    result = run_trial(graph, t=args.t, seed=args.seed)
    verdict = result.verdicts[0]
    truth = result.ground_truth
    print(f"topology : {label}  [{summarize(graph).describe()}]")
    print(f"verdict  : {verdict.decision} (confirmed={verdict.confirmed})")
    print(f"evidence : reachable={verdict.reachable}/{graph.n}, κ(view)={verdict.connectivity}")
    print(f"truth    : κ={truth.connectivity}, {args.t}-Byzantine-partitionable={truth.byzantine_partitionable}")
    print(f"cost     : {result.mean_kb_sent():.1f} KB sent per node")
    return 0 if verdict.decision is Decision.NOT_PARTITIONABLE else 1


# ----------------------------------------------------------------------
# figure / sweep: the declarative path
# ----------------------------------------------------------------------
def _parse_scalar(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_axis_value(text: str):
    """Parse one ``--set`` value into scalars (comma means sequence).

    Type shaping — wrapping bare scalars for sequence axes, floating
    ints on float axes — happens in ``SweepEngine.resolve``, so text
    input, wrapper kwargs and JSON spec files all canonicalise to the
    same resolved params (and the same spec digest).
    """
    if "," in text:
        return tuple(
            _parse_scalar(item) for item in text.split(",") if item != ""
        )
    return _parse_scalar(text)


def _parse_overrides(entries: Sequence[str]) -> dict:
    overrides = {}
    for entry in entries:
        name, separator, text = entry.partition("=")
        if not separator:
            raise ExperimentError(
                f"--set expects AXIS=VALUE, got {entry!r}"
            )
        overrides[name] = _parse_axis_value(text)
    return overrides


def _persist(
    figure: FigureData,
    resolved: ResolvedSweep,
    out: str,
    metadata: dict | None = None,
) -> pathlib.Path:
    """Write the figure JSON per the --out convention."""
    target = pathlib.Path(out)
    if out.endswith(("/", "\\")) or target.is_dir():
        return save_figure(figure, target, spec=resolved.payload(), metadata=metadata)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        dump_figure_json(figure, spec=resolved.payload(), metadata=metadata)
    )
    return target


def _artifact_metadata() -> dict | None:
    """Artifact-cache stats of the finished run, if the cache saw use.

    Printed on the human output and embedded as artefact JSON metadata
    (DESIGN.md §9-10).  Under sharding the counters cover the whole
    process tree — workers report their deltas back per cell.
    """
    stats = ARTIFACTS.stats
    if stats.total() == 0 and stats.key_pool_bypasses == 0:
        return None
    return {"artifact_stats": stats.as_dict()}


def _report_artifacts() -> dict | None:
    """Print the one-line artifact summary; return the JSON metadata."""
    metadata = _artifact_metadata()
    if metadata is not None:
        print(f"cache : {ARTIFACTS.stats.describe()}")
    return metadata


def _persist_csv(figure: FigureData, out: str) -> pathlib.Path:
    """Write the flat CSV rows per the --csv option."""
    target = pathlib.Path(out)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(dump_figure_csv(figure))
    return target


def _render_figure(figure: FigureData, spark: bool = False) -> None:
    print(figure.render())
    if spark:
        from repro.viz import figure_sparklines

        print()
        print(figure_sparklines(figure))


def _run_figure(args: argparse.Namespace) -> int:
    spec = FIGURE_SPECS[args.name]
    if args.full and "paper-scale" not in spec.capabilities:
        print(f"note: {args.name} has no paper-scale preset; standard parameters")
    resolved = SWEEP_ENGINE.resolve(
        spec,
        scale="paper" if args.full else "auto",
        overrides=_parse_overrides(args.overrides),
    )
    figure = SWEEP_ENGINE.run(
        resolved, workers=args.workers, artifact_store=args.artifact_store
    )
    _render_figure(figure, spark=args.spark)
    metadata = _report_artifacts()
    if args.out:
        print(f"saved: {_persist(figure, resolved, args.out, metadata=metadata)}")
    if args.csv:
        print(f"csv  : {_persist_csv(figure, args.csv)}")
    return 0


_SPEC_FILE_KEYS = frozenset({"figure", "scale", "set", "seed_mode", "base_seed"})


def _load_spec_file(path: str) -> dict:
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"cannot read spec file {path}: {exc}")
    if not isinstance(payload, dict) or "figure" not in payload:
        raise ExperimentError(
            f'spec file {path} must be a JSON object with a "figure" key'
        )
    if payload["figure"] not in FIGURE_SPECS:
        raise ExperimentError(
            f"spec file {path}: unknown figure {payload['figure']!r}; "
            f"known: {sorted(FIGURE_SPECS)}"
        )
    unknown = set(payload) - _SPEC_FILE_KEYS
    if unknown:
        raise ExperimentError(
            f"spec file {path}: unknown keys {sorted(unknown)}; "
            f"allowed: {sorted(_SPEC_FILE_KEYS)}"
        )
    if "set" in payload and not isinstance(payload["set"], dict):
        raise ExperimentError(
            f'spec file {path}: "set" must be an object of axis overrides'
        )
    if "base_seed" in payload and not isinstance(payload["base_seed"], int):
        raise ExperimentError(f'spec file {path}: "base_seed" must be an integer')
    return payload


def _list_sweeps() -> int:
    print("registered sweeps (repro sweep <id> --set axis=value ...):")
    for figure_id in sorted(FIGURE_SPECS):
        spec = FIGURE_SPECS[figure_id]
        axes = " ".join(axis.name for axis in spec.axes)
        capabilities = ",".join(sorted(spec.capabilities))
        print(f"  {figure_id:<24} {spec.title}")
        print(f"  {'':<24} axes: {axes}  capabilities: {capabilities}")
    print(
        "environment axes (valid on every sweep): "
        + " ".join(environment_axis_names())
    )
    return 0


def _print_fabric_interrupt(queue_root, resolved: ResolvedSweep) -> None:
    """The resumability hint behind ^C on a queue-backed sweep."""
    job_id = job_id_of(resolved)
    line = f"interrupted: fabric job {job_id}"
    try:
        status = FabricQueue(queue_root).status(job_id)
    except ExperimentError:
        status = None
    if status is not None:
        line += f" — {status.completed}/{status.total} shard(s) complete"
    print()
    print(line)
    print("rerun the same command to resume; completed shards are kept")


def _run_sweep(args: argparse.Namespace) -> int:
    if args.list:
        return _list_sweeps()
    file_payload: dict = {}
    if args.spec:
        file_payload = _load_spec_file(args.spec)
    name = args.name or file_payload.get("figure")
    if name is None:
        print("error: pass a figure id, --spec FILE, or --list")
        return 2
    if args.spec and args.name and args.name != file_payload["figure"]:
        print(
            f"error: figure id {args.name!r} conflicts with spec file "
            f"({file_payload['figure']!r})"
        )
        return 2
    overrides = dict(file_payload.get("set") or {})
    overrides.update(_parse_overrides(args.overrides))
    if args.full:
        scale = "paper"
    else:
        scale = file_payload.get("scale", "auto")
    seed_mode = args.seed_mode or file_payload.get("seed_mode")
    base_seed = (
        args.base_seed
        if args.base_seed is not None
        else int(file_payload.get("base_seed", 0))
    )
    resolved = SWEEP_ENGINE.resolve(
        name,
        scale=scale,
        overrides=overrides,
        seed_mode=seed_mode,
        base_seed=base_seed,
    )
    print(f"sweep : {name} ({resolved.scale} scale, seeds={resolved.seed_mode})")
    print(f"spec  : {spec_digest(resolved.payload())[:12]}")
    fabric_stats: dict | None = None
    if args.backend == "queue":
        queue_root = args.queue or os.environ.get(QUEUE_ENV)
        if not queue_root:
            raise ExperimentError(
                "--backend queue needs a queue directory: pass --queue DIR "
                f"or set {QUEUE_ENV}"
            )
        if args.workers:
            print(
                "note  : --workers is a local-backend option; queue "
                "parallelism comes from repro fabric worker processes"
            )
        try:
            run = run_sweep_via_queue(
                resolved,
                queue_root,
                artifact_store=args.artifact_store,
                work=not args.no_work,
            )
        except QueueUnreachable as exc:
            # The headline degraded-mode contract: an unreachable queue
            # must never fail a sweep the local path could run (§13.4).
            print(f"warning: queue unreachable ({exc})")
            print("warning: degrading to local serial execution")
            figure = SWEEP_ENGINE.run(
                resolved, workers=args.workers, artifact_store=args.artifact_store
            )
        except KeyboardInterrupt:
            _print_fabric_interrupt(queue_root, resolved)
            return 130
        else:
            print(run.describe())
            figure = run.figure
            fabric_stats = run.stats_payload()
    else:
        try:
            figure = SWEEP_ENGINE.run(
                resolved, workers=args.workers, artifact_store=args.artifact_store
            )
        except KeyboardInterrupt:
            print()
            print(
                "interrupted: local-backend progress is lost; rerun with "
                "--backend queue --queue DIR for a resumable sweep"
            )
            return 130
    _render_figure(figure)
    metadata = _report_artifacts()
    if fabric_stats is not None:
        # Degradation accounting rides in the artefact: retries,
        # quarantines and lease breaks a run absorbed are part of its
        # provenance (DESIGN.md §14), never silent.
        metadata = {**(metadata or {}), "fabric": fabric_stats}
    if args.out:
        print(f"saved: {_persist(figure, resolved, args.out, metadata=metadata)}")
    if args.csv:
        print(f"csv  : {_persist_csv(figure, args.csv)}")
    return 0


def _list_missions() -> int:
    print("mission scenarios (repro mission <id> --set axis=value ...):")
    for figure_id in sorted(MISSION_FIGURES):
        spec = FIGURE_SPECS[figure_id]
        axes = " ".join(axis.name for axis in spec.axes)
        print(f"  {figure_id:<26} {spec.title}")
        print(f"  {'':<26} axes: {axes}")
    print(
        "environment axes (valid on every mission): "
        + " ".join(environment_axis_names())
    )
    return 0


def _first_mission(resolved: ResolvedSweep) -> MissionSpec | None:
    """The first cell's mission of a resolved mission sweep (or None)."""
    plan = SWEEP_ENGINE.plan(resolved)
    cells = [cell for group in plan.groups for cell in group.cells]
    if not cells:
        return None
    return cells[0].with_env(resolved.env, resolved.env_fields).mission


def _print_epoch_line(report: EpochReport) -> None:
    verdict = report.verdict
    decision = getattr(verdict, "decision", verdict)
    confirmed = getattr(verdict, "confirmed", False)
    label = f"{decision}" + (" (confirmed)" if confirmed else "")
    truth = "cut " if report.partitionable else "safe"
    marker = " !" if report.escalated else "  "
    # flush per line: a long mission shows progress live, the way a
    # service subscription would, instead of buffering to the end.
    print(
        f"  epoch {report.epoch:>3}{marker} {label:<32} truth={truth} "
        f"{report.mean_kb_sent:8.1f} KB/node",
        flush=True,
    )


def _print_timeline(mission: MissionSpec) -> None:
    """Stream the first cell's mission, one epoch line per epoch."""
    print(
        f"timeline: {mission.protocol} mission, seed={mission.seed}, "
        f"{mission.trajectory.length} epochs "
        f"(trajectory: {mission.trajectory.kind}, n={mission.trajectory.n})"
    )
    adversary = getattr(mission, "adversary", None)
    if adversary is not None:
        print(
            f"  adversary: {adversary.count}x {adversary.profile} "
            f"({adversary.placement} placement, seed={adversary.seed})"
        )
    result = cached_mission_result(mission)
    if result is not None:
        # A serial sweep already memoised this mission: replay is free.
        for report in result.reports:
            _print_epoch_line(report)
    else:
        # Sharded sweeps memoised it in a worker that is gone: fly it
        # once more, serially, flushing each epoch as it lands.
        session = MissionSession(mission)
        while not session.done:
            _print_epoch_line(session.step())
        result = session.result()
        store_mission_result(mission, result)
    print(
        f"  -> emergence={result.emergence_epoch} "
        f"detection={result.detection_epoch} "
        f"latency={result.detection_latency:g} "
        f"false-alarms={result.false_alarm_rate:.0%}"
    )


def _run_mission_cmd(args: argparse.Namespace) -> int:
    if args.list:
        return _list_missions()
    if args.name is None:
        print("error: pass a mission scenario id or --list")
        return 2
    resolved = SWEEP_ENGINE.resolve(
        args.name,
        scale="paper" if args.full else "auto",
        overrides=_parse_overrides(args.overrides),
        seed_mode=args.seed_mode,
        base_seed=args.base_seed if args.base_seed is not None else 0,
    )
    print(f"mission : {args.name} ({resolved.scale} scale, seeds={resolved.seed_mode})")
    print(f"spec    : {spec_digest(resolved.payload())[:12]}")
    figure = SWEEP_ENGINE.run(
        resolved, workers=args.workers, artifact_store=args.artifact_store
    )
    _render_figure(figure)
    metadata = _report_artifacts()
    mission = None
    if args.timeline or args.events or args.mission_out or args.mission_spec:
        mission = _first_mission(resolved)
        if mission is None:
            print("timeline: the resolved sweep has no cells")
    if mission is not None:
        if args.timeline:
            _print_timeline(mission)
        if args.mission_spec:
            spec_path = pathlib.Path(args.mission_spec)
            spec_path.parent.mkdir(parents=True, exist_ok=True)
            spec_path.write_text(
                json.dumps({"mission": mission.payload()}, indent=2, sort_keys=True)
                + "\n"
            )
            print(f"mission spec: {spec_path}")
        if args.events or args.mission_out:
            result = mission_result(mission)  # memoised if the timeline ran
            if args.events:
                from repro.service.events import EventLog, mission_events

                mission_id = f"mission-{mission_digest(mission)[:12]}"
                events = mission_events(mission_id, result, label=args.name)
                with EventLog(args.events) as log:
                    for event in events:
                        log.emit(event)
                print(f"events: {args.events} ({len(events)} events)")
            if args.mission_out:
                print(
                    f"mission artefact: "
                    f"{write_mission_artifact(result, args.mission_out)}"
                )
    if args.out:
        print(f"saved: {_persist(figure, resolved, args.out, metadata=metadata)}")
    if args.csv:
        print(f"csv  : {_persist_csv(figure, args.csv)}")
    return 0


def _run_diff(args: argparse.Namespace) -> int:
    path_a, path_b = pathlib.Path(args.artefact_a), pathlib.Path(args.artefact_b)
    print(f"diff : {args.artefact_a} vs {args.artefact_b}")
    if path_a.is_dir() and path_b.is_dir():
        from repro.experiments.bench import ledger_file_diff

        diff = diff_artefact_directories(
            path_a, path_b, tolerance=args.tolerance, file_diff=ledger_file_diff
        )
    elif path_a.is_dir() or path_b.is_dir():
        print("error: compare two files or two directories, not a mix")
        return 2
    else:
        diff = diff_artefacts(path_a, path_b, tolerance=args.tolerance)
    print(diff.describe())
    return 1 if diff.diverged else 0


def _run_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import (
        BENCH_SCENARIOS,
        compare_ledgers,
        describe_ledger,
        ledger_path,
        load_ledger,
        run_scenario,
        write_ledger,
    )

    if args.list:
        print("registered bench scenarios (repro bench [names] --smoke):")
        for name in sorted(BENCH_SCENARIOS):
            scenario = BENCH_SCENARIOS[name]
            print(f"  {name:<24} {scenario.title}")
        return 0
    names = args.names or sorted(BENCH_SCENARIOS)
    unknown = [name for name in names if name not in BENCH_SCENARIOS]
    if unknown:
        print(
            f"error: unknown scenario(s) {unknown}; "
            f"known: {sorted(BENCH_SCENARIOS)}"
        )
        return 2
    scale = "smoke" if args.smoke else "full"
    print(f"bench : {len(names)} scenario(s), {scale} scale -> {args.out}")
    regressions = 0
    for name in names:
        ledger = run_scenario(
            BENCH_SCENARIOS[name], smoke=args.smoke, workers=args.workers
        )
        path = write_ledger(ledger, args.out)
        print(describe_ledger(ledger))
        print(f"  ledger: {path}")
        if not ledger["rows_equal"]:
            print("  EQUIVALENCE BROKEN: cached and uncached rows differ")
            regressions += 1
        if args.compare:
            baseline_path = ledger_path(args.compare, name)
            if not baseline_path.exists():
                print(f"  compare: no baseline at {baseline_path} (skipped)")
                continue
            problems = compare_ledgers(
                load_ledger(baseline_path), ledger, tolerance=args.tolerance
            )
            if problems:
                regressions += 1
                for problem in problems:
                    print(f"  REGRESSION: {problem}")
            else:
                print(f"  compare: ok vs {baseline_path}")
    return 1 if regressions else 0


def _run_map(args: argparse.Namespace) -> int:
    from repro.graphs.generators.drone import drone_deployment
    from repro.viz import drone_map

    deployment = drone_deployment(
        args.n, args.distance, args.radius, seed=args.seed
    )
    print(drone_map(deployment))
    result = run_trial(deployment.graph, t=1, seed=args.seed)
    verdict = result.verdicts[0]
    print(
        f"NECTAR (t=1): {verdict.decision} "
        f"(confirmed={verdict.confirmed}, κ={result.ground_truth.connectivity})"
    )
    return 0


def _run_topologies(args: argparse.Namespace) -> int:
    print(f"built-in families at n={args.n}, k={args.k}:")
    for name in sorted(TOPOLOGY_FAMILIES):
        try:
            graph = build_topology(name, args.n, args.k)
        except Exception as exc:  # noqa: BLE001 - report, keep listing
            print(f"  {name:<20} unavailable: {exc}")
            continue
        print(f"  {name:<20} {summarize(graph).describe()}")
    return 0


def _run_attack(args: argparse.Namespace) -> int:
    rates = attack_rates(args.n, args.t, radius=1.2, seed=args.seed)
    print(
        f"bridge attack: n={args.n}, t={args.t} two-faced bridges "
        f"between two islands"
    )
    print(f"NECTAR success rate: {rates['nectar']:.0%}")
    print(f"MtGv2 success rate : {rates['mtgv2']:.0%}")
    print(f"MtG success rate   : {rates['mtg']:.0%}")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal as signal_module

    from repro.service import EventLog, FleetService
    from repro.service.protocol import serve_socket, serve_stdio

    event_log = EventLog(args.events) if args.events else None
    service = FleetService(
        tick_interval=args.tick_ms / 1000.0,
        max_concurrency=args.max_concurrency,
        queue_limit=args.queue_limit,
        seed=args.scheduler_seed,
        event_log=event_log,
    )

    # A signal landing between the banner and the event loop wiring its
    # own handlers must still mean drain, not the default hard kill:
    # record it here, honour it the moment the loop is up.
    early_stop = {"requested": False}

    def _early_signal(_signum, _frame):
        early_stop["requested"] = True

    previous_handlers = {}
    for signum in (signal_module.SIGINT, signal_module.SIGTERM):
        try:
            previous_handlers[signum] = signal_module.signal(
                signum, _early_signal
            )
        except (ValueError, OSError):
            pass  # non-main thread / unsupported signal

    async def _main() -> bool:
        # Graceful drain (DESIGN.md §14.5): SIGINT/^C and SIGTERM stop
        # the request loop, let the in-flight epoch finish, and cancel
        # queued missions with MissionCancelled events — no default
        # KeyboardInterrupt unwinding through half-written output.
        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        wired = []
        for signum in (signal_module.SIGINT, signal_module.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_event.set)
                wired.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # no-signal platform/thread: ^C stays abrupt
        if early_stop["requested"]:
            stop_event.set()
        try:
            if args.socket:
                await serve_socket(service, args.socket, stop_event=stop_event)
            else:
                await serve_stdio(
                    service, on_eof=args.on_eof, stop_event=stop_event
                )
        finally:
            for signum in wired:
                loop.remove_signal_handler(signum)
        return stop_event.is_set()

    try:
        if args.socket:
            # stdout stays free in socket mode; the banner helps humans
            # find the endpoint either way, so it goes to stderr.
            print(f"serve: listening on {args.socket}", file=sys.stderr)
        else:
            print(
                "serve: NDJSON on stdio "
                f"(on EOF: {args.on_eof}; events: {args.events or 'off'})",
                file=sys.stderr,
            )
        interrupted = asyncio.run(_main()) or early_stop["requested"]
    finally:
        for signum, handler in previous_handlers.items():
            try:
                signal_module.signal(signum, handler)
            except (ValueError, OSError):
                pass
        if event_log is not None:
            event_log.close()
    if interrupted:
        print(
            "interrupted: drained gracefully — in-flight epochs finished, "
            "queued missions cancelled (MissionCancelled events emitted)",
            file=sys.stderr,
        )
        print(
            "resume by resubmitting unfinished missions"
            + (f"; the event log {args.events} records how far each got"
               if args.events else ""),
            file=sys.stderr,
        )
        return 130
    return 0


def _run_fabric(args: argparse.Namespace) -> int:
    import signal as signal_module

    queue_root = args.queue or os.environ.get(QUEUE_ENV)
    if not queue_root:
        raise ExperimentError(
            f"pass --queue DIR or set {QUEUE_ENV} to name the queue directory"
        )
    if args.fabric_command == "worker":
        # SIGTERM = graceful drain: finish the in-flight shard, publish,
        # exit — so a supervisor (or orchestrator) stopping the fleet
        # never strands a lease on a half-done shard.
        drain_requested = {"stop": False}

        def _request_drain(*_args) -> None:
            drain_requested["stop"] = True

        previous = signal_module.signal(signal_module.SIGTERM, _request_drain)
        try:
            stats = run_worker(
                queue_root,
                worker_id=args.worker_id,
                once=args.once,
                poll=args.poll_ms / 1000.0,
                idle_timeout=args.idle_timeout,
                max_shards=args.max_shards,
                stop=lambda: drain_requested["stop"],
            )
        finally:
            signal_module.signal(signal_module.SIGTERM, previous)
        print(stats.describe())
        return 0
    if args.fabric_command == "supervise":
        from repro.fabric.supervisor import (
            DEFAULT_HEARTBEAT_TIMEOUT,
            DEFAULT_MAX_RESTARTS,
            run_supervisor,
        )

        report = run_supervisor(
            queue_root,
            workers=args.workers,
            max_restarts=(
                args.max_restarts
                if args.max_restarts is not None
                else DEFAULT_MAX_RESTARTS
            ),
            heartbeat_timeout=(
                args.heartbeat_timeout
                if args.heartbeat_timeout is not None
                else DEFAULT_HEARTBEAT_TIMEOUT
            ),
            drain=args.drain,
            worker_idle_timeout=args.worker_idle_timeout,
        )
        print(report.describe())
        if report.interrupted:
            print("rerun the same command to resume; the queue is durable")
            return 130
        return 1 if report.crash_loops else 0
    queue = FabricQueue(queue_root)
    queue.connect(create=False)
    if getattr(args, "json", False):
        payload = queue.status_payload()
        if args.job is not None:
            job = payload["jobs"].get(args.job)
            if job is None:
                print(f"error: no job {args.job!r} in {queue_root}")
                return 2
            payload["jobs"] = {args.job: job}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.job is not None:
        status = queue.status(args.job)
        if status is None:
            print(f"error: no job {args.job!r} in {queue_root}")
            return 2
        print(f"queue : {queue.root}")
        print(f"  {status.describe()}")
        return 0
    print(queue.describe())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "check": _run_check,
        "figure": _run_figure,
        "sweep": _run_sweep,
        "mission": _run_mission_cmd,
        "serve": _run_serve,
        "fabric": _run_fabric,
        "bench": _run_bench,
        "diff": _run_diff,
        "map": _run_map,
        "topologies": _run_topologies,
        "attack": _run_attack,
    }
    try:
        return handlers[args.command](args)
    except ExperimentError as exc:
        print(f"error: {exc}")
        return 2
