"""Command-line interface.

Four subcommands cover the everyday uses of the library::

    python -m repro check --family harary --n 20 --k 4 --t 1
    python -m repro check --drone --n 20 --distance 3.0 --radius 1.8 --t 2
    python -m repro figure fig8
    python -m repro topologies --n 24 --k 4
    python -m repro attack --n 21 --t 2

``check`` answers the operational question — is this deployment safe
against t Byzantine nodes? — with NECTAR's verdict and the run's
cost.  ``figure`` regenerates one paper artefact.  ``topologies``
describes every built-in family.  ``attack`` replays the Fig. 8
scenario once and prints who got fooled.
"""

from __future__ import annotations

import argparse
import inspect
from typing import Callable, Sequence

from repro.experiments import figures as figures_module
from repro.experiments.accuracy import success_rate
from repro.experiments.report import FigureData
from repro.experiments.runner import run_trial
from repro.experiments.scenarios import (
    TOPOLOGY_FAMILIES,
    bridged_partition_scenario,
    build_topology,
)
from repro.graphs.analysis import summarize
from repro.graphs.generators.drone import drone_graph
from repro.types import Decision

#: figure name -> callable, mirroring DESIGN.md's experiment index.
FIGURES: dict[str, Callable[[], FigureData]] = {
    "fig3": figures_module.fig3_regular_cost,
    "fig3-random": figures_module.fig3_random_regular,
    "fig4": figures_module.fig4_drone_nectar,
    "fig5": figures_module.fig5_drone_mtgv2,
    "fig6": figures_module.fig6_drone_scaling_nectar,
    "fig7": figures_module.fig7_drone_scaling_mtgv2,
    "fig8": figures_module.fig8_byzantine_resilience,
    "topology-comparison": figures_module.topology_cost_comparison,
    "connectivity-resilience": figures_module.connectivity_resilience,
    "ablation-rounds": figures_module.ablation_round_count,
    "ablation-spam": figures_module.ablation_spam_dedup,
    "ablation-batching": figures_module.ablation_batching,
    "ablation-sigsize": figures_module.ablation_signature_size,
}


def _worker_count(value: str) -> int:
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"worker count cannot be negative, got {count}"
        )
    return count


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NECTAR: Byzantine-resilient partition detection (ICDCS 2024)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser(
        "check", help="run NECTAR on a topology and print the verdict"
    )
    check.add_argument(
        "--family",
        choices=sorted(TOPOLOGY_FAMILIES),
        help="built-in topology family (see `topologies`)",
    )
    check.add_argument("--drone", action="store_true", help="drone scenario instead")
    check.add_argument("--n", type=int, required=True, help="number of nodes")
    check.add_argument("--k", type=int, default=4, help="connectivity parameter")
    check.add_argument("--t", type=int, default=1, help="Byzantine budget")
    check.add_argument("--distance", type=float, default=0.0, help="drone barycenter distance")
    check.add_argument("--radius", type=float, default=1.8, help="drone radio range")
    check.add_argument("--seed", type=int, default=0)

    figure = commands.add_parser("figure", help="regenerate one paper artefact")
    figure.add_argument("name", choices=sorted(FIGURES))
    figure.add_argument(
        "--spark", action="store_true", help="also print unicode sparklines"
    )
    figure.add_argument(
        "--workers",
        type=_worker_count,
        default=None,
        metavar="N",
        help=(
            "shard sweep trials over N worker processes; 0 means one per "
            "CPU (default: the REPRO_WORKERS env var, else serial). "
            "Results are identical for any worker count."
        ),
    )

    drone_map = commands.add_parser(
        "map", help="render a drone deployment as an ASCII map"
    )
    drone_map.add_argument("--n", type=int, default=20)
    drone_map.add_argument("--distance", type=float, default=3.0)
    drone_map.add_argument("--radius", type=float, default=1.2)
    drone_map.add_argument("--seed", type=int, default=0)

    topologies = commands.add_parser(
        "topologies", help="describe every built-in topology family"
    )
    topologies.add_argument("--n", type=int, default=24)
    topologies.add_argument("--k", type=int, default=4)

    attack = commands.add_parser(
        "attack", help="replay the Fig. 8 bridge attack once"
    )
    attack.add_argument("--n", type=int, default=21)
    attack.add_argument("--t", type=int, default=2)
    attack.add_argument("--seed", type=int, default=0)
    return parser


def _run_check(args: argparse.Namespace) -> int:
    if args.drone:
        graph = drone_graph(args.n, args.distance, args.radius, seed=args.seed)
        label = f"drone(n={args.n}, d={args.distance}, radius={args.radius})"
    elif args.family:
        graph = build_topology(args.family, args.n, args.k, seed=args.seed)
        label = f"{args.family}(n={args.n}, k={args.k})"
    else:
        print("error: pass --family or --drone")
        return 2
    result = run_trial(graph, t=args.t, seed=args.seed)
    verdict = result.verdicts[0]
    truth = result.ground_truth
    print(f"topology : {label}  [{summarize(graph).describe()}]")
    print(f"verdict  : {verdict.decision} (confirmed={verdict.confirmed})")
    print(f"evidence : reachable={verdict.reachable}/{graph.n}, κ(view)={verdict.connectivity}")
    print(f"truth    : κ={truth.connectivity}, {args.t}-Byzantine-partitionable={truth.byzantine_partitionable}")
    print(f"cost     : {result.mean_kb_sent():.1f} KB sent per node")
    return 0 if verdict.decision is Decision.NOT_PARTITIONABLE else 1


def _run_figure(args: argparse.Namespace) -> int:
    function = FIGURES[args.name]
    kwargs = {}
    # The ablations run serially by design; pass workers only to the
    # sweeps that shard their trials.
    if "workers" in inspect.signature(function).parameters:
        kwargs["workers"] = args.workers
    elif args.workers is not None:
        print(f"note: {args.name} runs serially; --workers ignored")
    figure = function(**kwargs)
    print(figure.render())
    if args.spark:
        from repro.viz import figure_sparklines

        print()
        print(figure_sparklines(figure))
    return 0


def _run_map(args: argparse.Namespace) -> int:
    from repro.graphs.generators.drone import drone_deployment
    from repro.viz import drone_map

    deployment = drone_deployment(
        args.n, args.distance, args.radius, seed=args.seed
    )
    print(drone_map(deployment))
    result = run_trial(deployment.graph, t=1, seed=args.seed)
    verdict = result.verdicts[0]
    print(
        f"NECTAR (t=1): {verdict.decision} "
        f"(confirmed={verdict.confirmed}, κ={result.ground_truth.connectivity})"
    )
    return 0


def _run_topologies(args: argparse.Namespace) -> int:
    print(f"built-in families at n={args.n}, k={args.k}:")
    for name in sorted(TOPOLOGY_FAMILIES):
        try:
            graph = build_topology(name, args.n, args.k)
        except Exception as exc:  # noqa: BLE001 - report, keep listing
            print(f"  {name:<20} unavailable: {exc}")
            continue
        print(f"  {name:<20} {summarize(graph).describe()}")
    return 0


def _run_attack(args: argparse.Namespace) -> int:
    scenario = bridged_partition_scenario(args.n, args.t, seed=args.seed)
    rate = figures_module._nectar_attack_rate(scenario, seed=args.seed)
    print(
        f"bridge attack: n={args.n}, t={args.t} two-faced bridges "
        f"between two islands"
    )
    print(f"NECTAR success rate: {rate:.0%}")
    mtgv2 = figures_module._mtgv2_attack_rate(scenario, seed=args.seed)
    print(f"MtGv2 success rate : {mtgv2:.0%}")
    mtg = figures_module._mtg_attack_rate(args.n, args.t, 1.2, seed=args.seed)
    print(f"MtG success rate   : {mtg:.0%}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "check": _run_check,
        "figure": _run_figure,
        "map": _run_map,
        "topologies": _run_topologies,
        "attack": _run_attack,
    }
    return handlers[args.command](args)
