"""Terminal visualisation: sparklines, bar charts, drone maps.

Plotting libraries are out of scope offline; these helpers render the
library's data structures as plain text, good enough for the CLI, the
examples and quick log inspection.
"""

from __future__ import annotations

from repro.experiments.report import FigureData, Series
from repro.graphs.generators.drone import DroneDeployment

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """A one-line unicode sparkline of a numeric series."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high == low:
        return _SPARK_LEVELS[0] * len(values)
    span = high - low
    return "".join(
        _SPARK_LEVELS[
            min(
                len(_SPARK_LEVELS) - 1,
                int((value - low) / span * len(_SPARK_LEVELS)),
            )
        ]
        for value in values
    )


def series_sparkline(series: Series) -> str:
    """Sparkline of a figure series' means, with its range."""
    means = [point.mean for point in series.points]
    if not means:
        return f"{series.name}: (empty)"
    return (
        f"{series.name}: {sparkline(means)}  "
        f"[{min(means):.3g} .. {max(means):.3g}]"
    )


def figure_sparklines(figure: FigureData) -> str:
    """All series of a figure as labelled sparklines."""
    lines = [f"{figure.figure_id} — {figure.title}"]
    lines.extend(series_sparkline(series) for series in figure.series)
    return "\n".join(lines)


def bar_chart(
    rows: list[tuple[str, float]], width: int = 40, unit: str = ""
) -> str:
    """Horizontal bars with labels, scaled to the maximum value."""
    if not rows:
        return ""
    scale = max(value for _, value in rows) or 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        bar = "#" * max(1 if value > 0 else 0, int(width * value / scale))
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def drone_map(
    deployment: DroneDeployment, width: int = 60, height: int = 16
) -> str:
    """ASCII map of a drone deployment (left scatter `o`, right `x`).

    The bounding box of all positions is fitted to the character grid;
    collisions render as `*`.
    """
    xs = [p[0] for p in deployment.positions]
    ys = [p[1] for p in deployment.positions]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for node, (x, y) in enumerate(deployment.positions):
        column = int((x - min_x) / span_x * (width - 1))
        row = int((y - min_y) / span_y * (height - 1))
        marker = "o" if node in deployment.left_cluster else "x"
        current = grid[row][column]
        grid[row][column] = marker if current == " " else "*"
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    legend = (
        f"o: left scatter ({len(deployment.left_cluster)})  "
        f"x: right scatter ({len(deployment.right_cluster)})  "
        f"d={deployment.d} radius={deployment.radius}"
    )
    return f"{border}\n{body}\n{border}\n{legend}"
