"""Baseline partition detectors: MindTheGap and its signed variant."""

from repro.baselines.bloom import BloomFilter, optimal_parameters
from repro.baselines.mtg import (
    DEFAULT_FP_RATE,
    BloomPayload,
    MtgNode,
    mtg_epoch_count,
)
from repro.baselines.mtgv2 import (
    Mtgv2Node,
    SignedId,
    SignedIdsPayload,
    mtgv2_epoch_count,
    signed_id_message,
)

__all__ = [
    "BloomFilter",
    "optimal_parameters",
    "DEFAULT_FP_RATE",
    "BloomPayload",
    "MtgNode",
    "mtg_epoch_count",
    "Mtgv2Node",
    "SignedId",
    "SignedIdsPayload",
    "mtgv2_epoch_count",
    "signed_id_message",
]
