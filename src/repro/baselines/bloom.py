"""Bloom filters, the substrate of MindTheGap [6].

"MtG has a low network consumption because it uses Bloom filters to
represent a list of process IDs" (Sec. V-A) — and precisely because a
Bloom filter is an unauthenticated bit set, a Byzantine node "can send
filters full of 1 values to lead correct nodes to conclude that the
system is connected" (Sec. V-D).  Both properties matter here, so the
filter supports union, saturation and membership counting.
"""

from __future__ import annotations

import hashlib
import math
from functools import lru_cache


def optimal_parameters(expected_items: int, false_positive_rate: float) -> tuple[int, int]:
    """Classic (m, k) sizing for a Bloom filter.

    Args:
        expected_items: number of elements the filter should hold.
        false_positive_rate: target false-positive probability.

    Returns:
        ``(bit_count, hash_count)`` with bit_count rounded up to a
        multiple of 8 so filters pack evenly into bytes.
    """
    if expected_items < 1:
        raise ValueError("expected_items must be positive")
    if not 0.0 < false_positive_rate < 1.0:
        raise ValueError("false_positive_rate must lie strictly in (0, 1)")
    ln2 = math.log(2.0)
    bits = math.ceil(-expected_items * math.log(false_positive_rate) / (ln2 * ln2))
    bits = ((bits + 7) // 8) * 8
    hashes = max(1, round(bits / expected_items * ln2))
    return bits, hashes


@lru_cache(maxsize=16384)
def _hash_positions(bit_count: int, hash_count: int, item: int) -> tuple[int, ...]:
    """Bit positions of ``item`` for one filter geometry.

    The positions are a pure function of the geometry and the item, and
    every node of an MtG deployment shares one geometry — memoising
    them turns the hot membership sweep of ``conclude()`` (n candidates
    x n nodes, each re-hashing ``hash_count`` SHA-256 blocks) into
    dictionary lookups without changing a single bit.
    """
    encoded = item.to_bytes(8, "big", signed=True)
    return tuple(
        int.from_bytes(
            hashlib.sha256(index.to_bytes(2, "big") + encoded).digest()[:8], "big"
        )
        % bit_count
        for index in range(hash_count)
    )


class BloomFilter:
    """A fixed-size Bloom filter over integer items.

    Args:
        bit_count: number of bits (multiple of 8).
        hash_count: number of hash functions.
    """

    def __init__(self, bit_count: int, hash_count: int) -> None:
        if bit_count < 8 or bit_count % 8 != 0:
            raise ValueError("bit_count must be a positive multiple of 8")
        if hash_count < 1:
            raise ValueError("hash_count must be positive")
        self.bit_count = bit_count
        self.hash_count = hash_count
        self._bits = bytearray(bit_count // 8)

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def _positions(self, item: int) -> tuple[int, ...]:
        return _hash_positions(self.bit_count, self.hash_count, item)

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def add(self, item: int) -> None:
        """Insert an item."""
        for position in self._positions(item):
            self._bits[position // 8] |= 1 << (position % 8)

    def __contains__(self, item: int) -> bool:
        return all(
            self._bits[position // 8] & (1 << (position % 8))
            for position in self._positions(item)
        )

    def union_with(self, other: "BloomFilter") -> bool:
        """Merge ``other`` into this filter; True if any bit changed.

        Raises:
            ValueError: on mismatched parameters (a receiver cannot
                meaningfully merge a filter of another geometry; MtG
                fixes the geometry system-wide).
        """
        if (other.bit_count, other.hash_count) != (self.bit_count, self.hash_count):
            raise ValueError("cannot union Bloom filters of different geometry")
        changed = False
        for index, chunk in enumerate(other._bits):
            merged = self._bits[index] | chunk
            if merged != self._bits[index]:
                self._bits[index] = merged
                changed = True
        return changed

    def saturate(self) -> None:
        """Set every bit — the MtG attack of Sec. V-D."""
        for index in range(len(self._bits)):
            self._bits[index] = 0xFF

    def ones(self) -> int:
        """Number of set bits."""
        return sum(bin(chunk).count("1") for chunk in self._bits)

    def is_saturated(self) -> bool:
        """Whether every bit is set."""
        return all(chunk == 0xFF for chunk in self._bits)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """The raw bit array."""
        return bytes(self._bits)

    @classmethod
    def from_bytes(cls, bit_count: int, hash_count: int, data: bytes) -> "BloomFilter":
        """Rebuild a filter from its raw bit array.

        Raises:
            ValueError: when the data length does not match bit_count.
        """
        instance = cls(bit_count, hash_count)
        if len(data) != bit_count // 8:
            raise ValueError("bit array length does not match bit_count")
        instance._bits = bytearray(data)
        return instance

    def copy(self) -> "BloomFilter":
        """An independent copy."""
        return BloomFilter.from_bytes(self.bit_count, self.hash_count, self.to_bytes())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return (
            self.bit_count == other.bit_count
            and self.hash_count == other.hash_count
            and self._bits == other._bits
        )
