"""MtGv2 — MindTheGap hardened with signatures (Sec. V-A).

"We decided to also consider a strengthened version of MtG as a second
baseline, where MtG's Bloom filters are replaced by a list of signed
process IDs.  To minimize the increased network cost associated to
this modification, we made sure that nodes only send a given signed ID
once to their neighbors per epoch."

Each process initially holds only its own signed id σ_i(i).  On first
reception of a valid signed id it stores it and forwards it once to
every neighbor (except the one it came from) in the next epoch.  After
the last epoch a node decides CONNECTED iff it collected all n ids.

Signatures stop the filter-saturation attack — a Byzantine node cannot
fabricate σ_j(j) for a correct j — but MtGv2 still lacks agreement
under the two-faced attack of Sec. V-D, which Fig. 8 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.crypto.signer import KeyPair, PublicDirectory, SignatureScheme
from repro.crypto.sizes import WireProfile
from repro.errors import ProtocolError
from repro.net.codec import (
    ByteReader,
    PayloadCodec,
    pack_node_id,
    register_payload_codec,
)
from repro.net.message import Outgoing
from repro.net.simulator import RoundProtocol
from repro.types import BaselineDecision, NodeId

_ID_DOMAIN = b"repro-mtgv2-id|"


def signed_id_message(node_id: NodeId) -> bytes:
    """The byte string a process signs to attest its own liveness."""
    return _ID_DOMAIN + node_id.to_bytes(2, "big")


@dataclass(frozen=True)
class SignedId:
    """A process id signed by its owner."""

    node_id: NodeId
    signature: bytes


@dataclass(frozen=True)
class SignedIdsPayload:
    """A batch of signed ids gossiped in one epoch."""

    entries: tuple[SignedId, ...]

    def encoded_size(self, profile: WireProfile) -> int:
        return (
            profile.epoch_header_bytes
            + 2
            + len(self.entries) * profile.signed_id_bytes()
        )


class SignedIdsCodec(PayloadCodec):
    """Binary codec for :class:`SignedIdsPayload` (tag 3)."""

    tag = 3
    payload_type = SignedIdsPayload

    def encode(self, payload: SignedIdsPayload, profile: WireProfile) -> bytes:
        parts = [bytes(profile.epoch_header_bytes)]
        parts.append(len(payload.entries).to_bytes(2, "big"))
        for entry in payload.entries:
            if len(entry.signature) != profile.signature_bytes:
                raise ValueError("signature width does not match the wire profile")
            parts.append(pack_node_id(entry.node_id))
            parts.append(entry.signature)
        return b"".join(parts)

    def decode(self, data: bytes, profile: WireProfile) -> SignedIdsPayload:
        reader = ByteReader(data)
        reader.take(profile.epoch_header_bytes)
        count = reader.take_u16()
        entries = tuple(
            SignedId(
                node_id=reader.take_u16(),
                signature=reader.take(profile.signature_bytes),
            )
            for _ in range(count)
        )
        reader.finish()
        return SignedIdsPayload(entries=entries)


register_payload_codec(SignedIdsCodec())


def mtgv2_epoch_count(n: int) -> int:
    """Epochs needed for convergence on any connected topology."""
    return max(1, n - 1)


class Mtgv2Node(RoundProtocol):
    """One MtGv2 process.

    Args:
        node_id: this process's id.
        n: total number of processes.
        neighbors: Γ(i).
        key_pair: the process's signing keys.
        scheme: the deployment's signature scheme.
        directory: the public-key directory.
    """

    def __init__(
        self,
        node_id: NodeId,
        n: int,
        neighbors: Iterable[NodeId],
        key_pair: KeyPair,
        scheme: SignatureScheme,
        directory: PublicDirectory,
    ) -> None:
        if key_pair.node_id != node_id:
            raise ProtocolError("key pair does not belong to this node")
        self._node_id = node_id
        self._n = n
        self._neighbors = frozenset(neighbors)
        if node_id in self._neighbors:
            raise ProtocolError("a node cannot neighbor itself")
        self._scheme = scheme
        self._directory = directory
        own = SignedId(
            node_id=node_id,
            signature=scheme.sign(key_pair, signed_id_message(node_id)),
        )
        self._known: dict[NodeId, SignedId] = {node_id: own}
        # Newly learned ids to forward next epoch, with their source
        # (None for our own id, which goes to every neighbor).
        self._pending: list[tuple[SignedId, NodeId | None]] = [(own, None)]
        self._decided = False

    # ------------------------------------------------------------------
    # RoundProtocol interface (round == epoch)
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> NodeId:
        return self._node_id

    @property
    def known_ids(self) -> frozenset[NodeId]:
        """Ids collected so far (tests and reports)."""
        return frozenset(self._known)

    def begin_round(self, round_number: int) -> list[Outgoing]:
        if not self._pending:
            return []
        pending = self._pending
        self._pending = []
        outgoing = []
        for neighbor in sorted(self._neighbors):
            entries = tuple(
                signed_id
                for signed_id, source in pending
                if source != neighbor
            )
            if entries:
                outgoing.append(
                    Outgoing(
                        destination=neighbor,
                        payload=SignedIdsPayload(entries=entries),
                    )
                )
        return [out for out in outgoing if self._keep_outgoing(out, round_number)]

    def deliver(self, round_number: int, sender: NodeId, payload: Any) -> None:
        if not isinstance(payload, SignedIdsPayload):
            return
        for entry in payload.entries:
            if entry.node_id in self._known:
                continue
            if not 0 <= entry.node_id < self._n:
                continue
            if entry.node_id not in self._directory:
                continue
            public = self._directory.public_key_of(entry.node_id)
            message = signed_id_message(entry.node_id)
            if not self._scheme.verify(public, message, entry.signature):
                continue  # unforgeable: fabricated ids die here
            self._known[entry.node_id] = entry
            self._pending.append((entry, sender))

    def conclude(self) -> BaselineDecision:
        if self._decided:
            raise ProtocolError("decide() is one-shot")
        self._decided = True
        if len(self._known) == self._n:
            return BaselineDecision.CONNECTED
        return BaselineDecision.PARTITIONED

    # ------------------------------------------------------------------
    # Hook for Byzantine subclasses
    # ------------------------------------------------------------------
    def _keep_outgoing(self, outgoing: Outgoing, round_number: int) -> bool:
        """Final say on each send; honest nodes send everything."""
        return True
