"""MindTheGap (MtG) — the paper's first baseline [6].

"Processes in MtG flood a list of reachable nodes to each other.
Nodes keep in memory a list of reachable nodes (that only contains
themselves initially), and send regularly this list to their
neighbors, during a fixed period of time (an epoch).  When receiving a
list of neighbors, nodes can actualize their own list of reachable
nodes." (Sec. V-A)

The list is a Bloom filter; our node gossips its filter to every
neighbor each epoch *when the filter changed* since the previous
gossip to that neighbor (resending identical filters would carry no
information, and the change-driven schedule is what makes MtG's cost
nearly independent of d and radius, the flat red curve of Fig. 4).

MtG is not Byzantine-resilient: a saturated filter (all bits set)
makes every id look reachable (Sec. V-D); the attack lives in
:mod:`repro.adversary.behaviors`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.baselines.bloom import BloomFilter, optimal_parameters
from repro.crypto.sizes import WireProfile
from repro.errors import ProtocolError
from repro.net.codec import ByteReader, PayloadCodec, register_payload_codec
from repro.net.message import Outgoing
from repro.net.simulator import RoundProtocol
from repro.types import BaselineDecision, NodeId

#: Default false-positive target used to size the filters.
DEFAULT_FP_RATE = 0.01


@dataclass(frozen=True)
class BloomPayload:
    """One gossiped Bloom filter."""

    bit_count: int
    hash_count: int
    bits: bytes

    def encoded_size(self, profile: WireProfile) -> int:
        # 4 bytes of bit_count + 1 byte of hash_count + the bit array,
        # plus the baseline's epoch framing.
        return profile.epoch_header_bytes + 5 + len(self.bits)


class BloomPayloadCodec(PayloadCodec):
    """Binary codec for :class:`BloomPayload` (tag 2)."""

    tag = 2
    payload_type = BloomPayload

    def encode(self, payload: BloomPayload, profile: WireProfile) -> bytes:
        header = bytes(profile.epoch_header_bytes)
        return (
            header
            + payload.bit_count.to_bytes(4, "big")
            + payload.hash_count.to_bytes(1, "big")
            + payload.bits
        )

    def decode(self, data: bytes, profile: WireProfile) -> BloomPayload:
        reader = ByteReader(data)
        reader.take(profile.epoch_header_bytes)
        bit_count = reader.take_u32()
        hash_count = reader.take_u8()
        bits = reader.take(len(data) - profile.epoch_header_bytes - 5)
        reader.finish()
        return BloomPayload(bit_count=bit_count, hash_count=hash_count, bits=bits)


register_payload_codec(BloomPayloadCodec())


def mtg_epoch_count(n: int) -> int:
    """Number of gossip epochs: n - 1 guarantees convergence on any
    connected topology (information travels one hop per epoch)."""
    return max(1, n - 1)


class MtgNode(RoundProtocol):
    """One MindTheGap process.

    Args:
        node_id: this process's id.
        n: total number of processes.
        neighbors: Γ(i).
        false_positive_rate: Bloom sizing target (system-wide constant).
        resend_period: 0 (default) gossips only when the filter changed
            since the last send — the cheap schedule behind MtG's flat
            cost curve.  A positive p re-gossips every p epochs even
            without changes, which is what buys MtG its loss tolerance
            on unreliable MANET channels (Sec. VI-A; see the loss
            bench).
    """

    def __init__(
        self,
        node_id: NodeId,
        n: int,
        neighbors: Iterable[NodeId],
        false_positive_rate: float = DEFAULT_FP_RATE,
        resend_period: int = 0,
    ) -> None:
        self._node_id = node_id
        self._n = n
        self._neighbors = frozenset(neighbors)
        if node_id in self._neighbors:
            raise ProtocolError("a node cannot neighbor itself")
        if resend_period < 0:
            raise ProtocolError("resend_period cannot be negative")
        bit_count, hash_count = optimal_parameters(n, false_positive_rate)
        self._filter = BloomFilter(bit_count, hash_count)
        self._filter.add(node_id)
        self._resend_period = resend_period
        # Last filter snapshot gossiped (same to all neighbors).
        self._last_sent: BloomFilter | None = None
        self._decided = False

    # ------------------------------------------------------------------
    # RoundProtocol interface (round == epoch)
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> NodeId:
        return self._node_id

    @property
    def reachable_filter(self) -> BloomFilter:
        """The node's current reachable-set filter (tests, attacks)."""
        return self._filter

    def begin_round(self, round_number: int) -> list[Outgoing]:
        current = self._gossip_filter()
        periodic_refresh = (
            self._resend_period > 0 and round_number % self._resend_period == 0
        )
        if (
            self._last_sent is not None
            and current == self._last_sent
            and not periodic_refresh
        ):
            return []  # nothing new to say this epoch
        self._last_sent = current.copy()
        payload = BloomPayload(
            bit_count=current.bit_count,
            hash_count=current.hash_count,
            bits=current.to_bytes(),
        )
        return [
            out
            for out in (
                Outgoing(destination=neighbor, payload=payload)
                for neighbor in sorted(self._neighbors)
            )
            if self._keep_outgoing(out, round_number)
        ]

    def deliver(self, round_number: int, sender: NodeId, payload: Any) -> None:
        if not isinstance(payload, BloomPayload):
            return
        if (payload.bit_count, payload.hash_count) != (
            self._filter.bit_count,
            self._filter.hash_count,
        ):
            return  # wrong geometry: drop
        try:
            received = BloomFilter.from_bytes(
                payload.bit_count, payload.hash_count, payload.bits
            )
        except ValueError:
            return
        self._filter.union_with(received)

    def conclude(self) -> BaselineDecision:
        if self._decided:
            raise ProtocolError("decide() is one-shot")
        self._decided = True
        reachable = sum(1 for candidate in range(self._n) if candidate in self._filter)
        if reachable == self._n:
            return BaselineDecision.CONNECTED
        return BaselineDecision.PARTITIONED

    # ------------------------------------------------------------------
    # Hooks for Byzantine subclasses
    # ------------------------------------------------------------------
    def _gossip_filter(self) -> BloomFilter:
        """The filter advertised this epoch; honest nodes tell the truth."""
        return self._filter

    def _keep_outgoing(self, outgoing: Outgoing, round_number: int) -> bool:
        """Final say on each send; honest nodes send everything."""
        return True
