"""Adversarial mission campaigns: who misbehaves, how, and where.

PR-5's mission layer runs a protocol instance per epoch over an
evolving topology; this module makes the adversary a first-class,
sweepable part of that loop.  A campaign is described by an
:class:`AdversarySpec` — a behaviour *profile* (which deviation the
coalition runs), a *placement* policy (where the Byzantine nodes sit,
possibly repositioning between epochs) and a *count* — and compiled
into per-epoch Byzantine sets by :func:`plan_placements` plus
per-node protocol factories by :func:`campaign_factories`.

Two design constraints shape the API:

* **Determinism under sharding.**  Mission epochs execute as
  independent tasks, possibly across worker processes; placements for
  *all* epochs are therefore computed up front in a sequential
  pre-pass (the trajectory builds every graph before execution, so the
  ``adaptive`` policy can consult epoch e-1's topology without
  coupling the epoch tasks).  Factories are rebuilt inside each worker
  from plain spec data — nothing closure-shaped crosses a process
  boundary.
* **The Validity shape stays reachable.**  The ``deceptive`` profile
  reproduces the exact coalition behind the Definition-3 bug (a
  correct-acting sleeper shielded by silent colluders), so the class
  of bug this PR fixes is exercised by every campaign sweep instead of
  living only in a pinned regression test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.adversary.behaviors import (
    BadAggregatorNectarNode,
    CollusionTracker,
    EquivocatingNectarNode,
    SilentNode,
    SleeperNectarNode,
    TwoFacedNectarNode,
)
from repro.errors import ExperimentError
from repro.graphs.connectivity import minimum_vertex_cut
from repro.graphs.graph import Graph
from repro.types import NodeId

#: Campaign behaviour profiles.  ``deceptive`` is the heterogeneous
#: Validity-bug coalition: the lowest-id Byzantine node runs the
#: honest protocol (a sleeper) while the rest stay silent.
ADVERSARY_PROFILES: tuple[str, ...] = (
    "sleeper",
    "silent",
    "two-faced",
    "equivocate",
    "bad-aggregator",
    "deceptive",
)

#: Placement policies: ``static`` draws once (epoch 0's graph) and
#: never moves; ``random`` redraws every epoch; ``adaptive`` moves the
#: coalition onto the previous epoch's minimum vertex cut — the
#: full-knowledge adversary that chases the emerging bottleneck.
PLACEMENT_POLICIES: tuple[str, ...] = ("static", "random", "adaptive")


@dataclass(frozen=True)
class AdversarySpec:
    """One adversarial campaign, as plain sweepable data.

    Attributes:
        profile: coalition behaviour (:data:`ADVERSARY_PROFILES`).
        placement: repositioning policy (:data:`PLACEMENT_POLICIES`).
        count: coalition size (must satisfy ``0 < count <= t``).
        seed: campaign RNG seed (placement draws, half splits,
            victim choices).  Mission sweeps derive it from the trial
            seed so every trial fights a different — but reproducible —
            adversary.
    """

    profile: str = "deceptive"
    placement: str = "static"
    count: int = 1
    seed: int = 0

    def validate(self, t: int) -> None:
        if self.profile not in ADVERSARY_PROFILES:
            raise ExperimentError(
                f"unknown adversary profile {self.profile!r}; "
                f"expected one of {ADVERSARY_PROFILES}"
            )
        if self.placement not in PLACEMENT_POLICIES:
            raise ExperimentError(
                f"unknown placement policy {self.placement!r}; "
                f"expected one of {PLACEMENT_POLICIES}"
            )
        if self.count < 1:
            raise ExperimentError("an adversarial campaign needs count >= 1")
        if self.count > t:
            raise ExperimentError(
                f"campaign of {self.count} Byzantine nodes exceeds "
                f"the declared bound t={t}"
            )

    def payload(self) -> dict[str, Any]:
        """Stable dict form for digests and artefact metadata."""
        return {
            "profile": self.profile,
            "placement": self.placement,
            "count": self.count,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "AdversarySpec":
        """Rebuild a campaign from :meth:`payload` output (wire form).

        Validation against ``t`` happens at the owning mission's
        :meth:`~repro.experiments.mission.MissionSpec.validate`, which
        every deserialisation path calls.

        Raises:
            ExperimentError: on non-object payloads or unknown fields.
        """
        if not isinstance(payload, dict):
            raise ExperimentError(
                f"an adversary payload must be an object, got {payload!r}"
            )
        known = {"profile", "placement", "count", "seed"}
        unknown = set(payload) - known
        if unknown:
            raise ExperimentError(
                f"unknown adversary payload fields {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(
            profile=str(payload.get("profile", "deceptive")),
            placement=str(payload.get("placement", "static")),
            count=int(payload.get("count", 1)),
            seed=int(payload.get("seed", 0)),
        )


def _draw(rng: random.Random, graph: Graph, count: int) -> frozenset[NodeId]:
    nodes = sorted(graph.nodes())
    if count > len(nodes):
        raise ExperimentError(
            f"cannot place {count} Byzantine nodes on {len(nodes)} nodes"
        )
    return frozenset(rng.sample(nodes, count))


def plan_placements(
    graphs: Sequence[Graph], spec: AdversarySpec
) -> list[frozenset[NodeId]]:
    """Byzantine sets for every epoch, computed as a sequential pre-pass.

    The adaptive policy reads epoch e-1's topology to position epoch
    e's coalition; running this *before* the (possibly sharded) epoch
    executions keeps every epoch task independent, so rows are
    bit-identical under any worker count.
    """
    placements: list[frozenset[NodeId]] = []
    for epoch, graph in enumerate(graphs):
        if spec.placement == "static":
            rng = random.Random(("campaign-static", spec.seed).__repr__())
            placements.append(_draw(rng, graphs[0], spec.count))
            continue
        if spec.placement == "random" or epoch == 0:
            rng = random.Random(("campaign-random", spec.seed, epoch).__repr__())
            placements.append(_draw(rng, graph, spec.count))
            continue
        # adaptive, epoch >= 1: chase the previous epoch's bottleneck.
        rng = random.Random(("campaign-adaptive", spec.seed, epoch).__repr__())
        try:
            cut = sorted(minimum_vertex_cut(graphs[epoch - 1]))
        except ValueError:
            # Disconnected or complete: no cut to chase — fall back to
            # a random draw for this epoch.
            placements.append(_draw(rng, graph, spec.count))
            continue
        chosen = list(cut[: spec.count])
        if len(chosen) < spec.count:
            pool = [v for v in sorted(graph.nodes()) if v not in set(chosen)]
            chosen.extend(rng.sample(pool, spec.count - len(chosen)))
        placements.append(frozenset(chosen))
    return placements


def _nectar_factory(cls, **extra):
    """A factory building ``cls`` (a NectarNode subclass) from a setup."""

    def factory(setup):
        return cls(
            setup.node_id,
            setup.n,
            setup.t,
            setup.key_store.key_pair_of(setup.node_id),
            setup.scheme,
            setup.key_store.directory,
            setup.neighbor_proofs,
            validation_mode=setup.validation_mode,
            connectivity_cutoff=setup.connectivity_cutoff,
            verification_cache=setup.verification_cache,
            **extra,
        )

    return factory


def _silent_factory(setup):
    return SilentNode(setup.node_id)


def campaign_factories(
    profile: str,
    byzantine: frozenset[NodeId],
    n: int,
    seed: int = 0,
    tracker: CollusionTracker | None = None,
) -> Mapping[NodeId, Callable[[Any], Any]]:
    """Per-node protocol factories for one epoch's coalition.

    Built from plain data (profile name, node ids, seed) so callers in
    worker processes can reconstruct identical coalitions without
    shipping closures.  Coordinated profiles (``equivocate``,
    ``two-faced``) share one :class:`CollusionTracker` across the
    coalition — pass ``tracker`` to observe it, otherwise one is
    created internally.
    """
    if not byzantine:
        return {}
    correct = sorted(set(range(n)) - byzantine)
    if profile == "sleeper":
        return {b: _nectar_factory(SleeperNectarNode) for b in byzantine}
    if profile == "silent":
        return _silent_only(byzantine)
    if profile == "two-faced":
        shared = tracker or CollusionTracker(correct, seed=seed)
        starved = shared.halves[1]
        return {
            b: _nectar_factory(TwoFacedNectarNode, silent_towards=starved)
            for b in byzantine
        }
    if profile == "equivocate":
        shared = tracker or CollusionTracker(correct, seed=seed)
        return {
            b: _nectar_factory(EquivocatingNectarNode, tracker=shared)
            for b in byzantine
        }
    if profile == "bad-aggregator":
        rng = random.Random(("campaign-victims", seed).__repr__())
        victims = frozenset(
            rng.sample(correct, min(2, len(correct))) if correct else ()
        )
        return {
            b: _nectar_factory(BadAggregatorNectarNode, victims=victims)
            for b in byzantine
        }
    if profile == "deceptive":
        ordered = sorted(byzantine)
        factories: dict[NodeId, Callable[[Any], Any]] = {
            ordered[0]: _nectar_factory(SleeperNectarNode)
        }
        for b in ordered[1:]:
            factories[b] = _silent_factory
        return factories
    raise ExperimentError(f"unknown adversary profile {profile!r}")


def _silent_only(byzantine: frozenset[NodeId]):
    return {b: _silent_factory for b in byzantine}


__all__ = [
    "ADVERSARY_PROFILES",
    "PLACEMENT_POLICIES",
    "AdversarySpec",
    "campaign_factories",
    "plan_placements",
]
