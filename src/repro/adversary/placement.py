"""Byzantine placement strategies.

Where the t Byzantine nodes sit decides how much damage they can do
(Sec. III-B): a 1-Byzantine-partitionable star is only broken when the
*center* is Byzantine.  These helpers produce the placements used by
the evaluation: uniformly random ("aleatory placement", Sec. V-D),
balanced across the two drone scatters, and the worst case — a minimum
vertex cut.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.errors import ExperimentError
from repro.graphs.connectivity import minimum_vertex_cut
from repro.graphs.graph import Graph
from repro.types import NodeId


def random_placement(
    graph: Graph, t: int, seed: int = 0, forbidden: Iterable[NodeId] = ()
) -> frozenset[NodeId]:
    """Pick t Byzantine nodes uniformly at random.

    Args:
        graph: the topology.
        t: how many nodes turn Byzantine.
        seed: RNG seed.
        forbidden: ids that must stay correct (e.g. observed nodes).

    Raises:
        ExperimentError: when fewer than t candidates remain.
    """
    candidates = [v for v in graph.nodes() if v not in set(forbidden)]
    if t > len(candidates):
        raise ExperimentError(
            f"cannot place {t} Byzantine nodes among {len(candidates)} candidates"
        )
    rng = random.Random(("placement-random", t, seed).__repr__())
    return frozenset(rng.sample(candidates, t))


def balanced_placement(
    groups: Iterable[Iterable[NodeId]], t: int, seed: int = 0
) -> frozenset[NodeId]:
    """Spread t Byzantine nodes as evenly as possible over groups.

    Used for the MtG saturation experiment, where the paper "take[s]
    care of equally distributing the Byzantine nodes between the two
    parts" (Sec. V-D).
    """
    pools = [sorted(set(group)) for group in groups]
    if not pools:
        raise ExperimentError("balanced placement needs at least one group")
    if t > sum(len(pool) for pool in pools):
        raise ExperimentError("not enough nodes to host the Byzantine set")
    rng = random.Random(("placement-balanced", t, seed).__repr__())
    for pool in pools:
        rng.shuffle(pool)
    chosen: list[NodeId] = []
    index = 0
    while len(chosen) < t:
        pool = pools[index % len(pools)]
        if pool:
            chosen.append(pool.pop())
        index += 1
        if index > 10 * t + 10:  # all remaining pools empty
            raise ExperimentError("not enough nodes to host the Byzantine set")
    return frozenset(chosen)


def vertex_cut_placement(graph: Graph, t: int) -> frozenset[NodeId]:
    """Place Byzantine nodes on a minimum vertex cut (worst case).

    When κ(G) <= t this yields a set that *can* disconnect the correct
    nodes — the situation Safety (Def. 3) protects against.

    Raises:
        ExperimentError: when the minimum cut is larger than t (the
            adversary cannot cut the graph) or no cut exists.
    """
    try:
        cut = minimum_vertex_cut(graph)
    except ValueError as exc:
        raise ExperimentError(str(exc)) from exc
    if len(cut) > t:
        raise ExperimentError(
            f"minimum cut has {len(cut)} nodes, above the budget t={t}"
        )
    return frozenset(cut)
