"""Byzantine behaviours, placement strategies and mission campaigns."""

from repro.adversary.behaviors import (
    BadAggregatorNectarNode,
    CollusionTracker,
    EdgeConcealingNectarNode,
    EquivocatingNectarNode,
    FictitiousEdgeNectarNode,
    ForgingNectarNode,
    JunkInjectorNode,
    OverChainedNectarNode,
    SaturatingMtgNode,
    SilentNode,
    SleeperNectarNode,
    SpamNectarNode,
    StaleChainNectarNode,
    TwoFacedMtgNode,
    TwoFacedMtgv2Node,
    TwoFacedNectarNode,
)
from repro.adversary.campaign import (
    ADVERSARY_PROFILES,
    PLACEMENT_POLICIES,
    AdversarySpec,
    campaign_factories,
    plan_placements,
)
from repro.adversary.placement import (
    balanced_placement,
    random_placement,
    vertex_cut_placement,
)

__all__ = [
    "ADVERSARY_PROFILES",
    "AdversarySpec",
    "BadAggregatorNectarNode",
    "CollusionTracker",
    "EdgeConcealingNectarNode",
    "EquivocatingNectarNode",
    "FictitiousEdgeNectarNode",
    "ForgingNectarNode",
    "JunkInjectorNode",
    "OverChainedNectarNode",
    "PLACEMENT_POLICIES",
    "SaturatingMtgNode",
    "SilentNode",
    "SleeperNectarNode",
    "SpamNectarNode",
    "StaleChainNectarNode",
    "TwoFacedMtgNode",
    "TwoFacedMtgv2Node",
    "TwoFacedNectarNode",
    "balanced_placement",
    "campaign_factories",
    "plan_placements",
    "random_placement",
    "vertex_cut_placement",
]
