"""Byzantine behaviours and placement strategies."""

from repro.adversary.behaviors import (
    EdgeConcealingNectarNode,
    FictitiousEdgeNectarNode,
    ForgingNectarNode,
    JunkInjectorNode,
    OverChainedNectarNode,
    SaturatingMtgNode,
    SilentNode,
    SpamNectarNode,
    StaleChainNectarNode,
    TwoFacedMtgNode,
    TwoFacedMtgv2Node,
    TwoFacedNectarNode,
)
from repro.adversary.placement import (
    balanced_placement,
    random_placement,
    vertex_cut_placement,
)

__all__ = [
    "EdgeConcealingNectarNode",
    "FictitiousEdgeNectarNode",
    "ForgingNectarNode",
    "JunkInjectorNode",
    "OverChainedNectarNode",
    "SaturatingMtgNode",
    "SilentNode",
    "SpamNectarNode",
    "StaleChainNectarNode",
    "TwoFacedMtgNode",
    "TwoFacedMtgv2Node",
    "TwoFacedNectarNode",
    "balanced_placement",
    "random_placement",
    "vertex_cut_placement",
]
