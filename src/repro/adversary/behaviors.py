"""The Byzantine attack library (Sec. V-D and the model of Sec. II).

Byzantine nodes "may deviate arbitrarily from their specified
protocol, e.g., they may drop, modify, or inject messages at any
time", but cannot forge signatures, create channels, or break
synchrony.  Each class here is one concrete deviation, implemented as
a :class:`repro.net.simulator.RoundProtocol` (often by subclassing the
honest protocol and overriding its deviation hooks), so attacks run on
both execution backends.

Paper-relevant behaviours:

* :class:`SilentNode` — a crash-like Byzantine node (drops everything).
* :class:`TwoFacedNectarNode` / :class:`TwoFacedMtgv2Node` — "Byzantine
  nodes act correctly toward one part of the subgraph of correct
  nodes, and as crashed nodes for the other part" (the Fig. 8 attack).
* :class:`SaturatingMtgNode` — "send filters full of 1 values to lead
  correct nodes to conclude that the system is connected".
* :class:`EdgeConcealingNectarNode` — omit some of one's own edges,
  lowering the perceived connectivity (Sec. IV, Byzantine deviations).
* :class:`FictitiousEdgeNectarNode` — a Byzantine pair declares a fake
  edge between themselves (possible per the model, harmless per the
  paper).
* :class:`StaleChainNectarNode` / :class:`OverChainedNectarNode` —
  relay with wrong-length chains (late/early messages; must be
  rejected by l. 14).
* :class:`ForgingNectarNode` — attempts an actual forgery of a proof
  involving a correct node; the signature layer defeats it.
* :class:`SpamNectarNode` — re-announces its own edges every round to
  inflate traffic (defeated by receiver-side dedup; measured by the
  dedup ablation).
* :class:`JunkInjectorNode` — ships unparseable garbage.

Campaign behaviours (the ``repro mission`` adversary profiles, see
:mod:`repro.adversary.campaign`):

* :class:`SleeperNectarNode` — runs the honest protocol to the letter
  while still counting against the budget t; the correct-acting shape
  behind the Definition-3 Validity counterexample.
* :class:`EquivocatingNectarNode` — tells each half of the correct
  nodes a different story, coordinated across the coalition through a
  shared :class:`CollusionTracker`.
* :class:`BadAggregatorNectarNode` — relays faithfully except that
  announcements involving a victim set silently vanish, eroding the
  perceived connectivity from a trusted-looking relay position.
"""

from __future__ import annotations

import random
from typing import Any, Iterable

from repro.baselines.bloom import BloomFilter
from repro.baselines.mtg import MtgNode
from repro.baselines.mtgv2 import Mtgv2Node
from repro.core.messages import EdgeAnnouncement, NectarBatch
from repro.core.nectar import NectarNode
from repro.crypto.chain import ChainLink, extend_chain
from repro.crypto.proofs import NeighborhoodProof, make_proof, proof_bytes
from repro.crypto.signer import KeyPair, SignatureScheme
from repro.net.message import Outgoing, RawPayload
from repro.net.simulator import RoundProtocol
from repro.types import NodeId


#: The ``mixed`` adversary profile (a registered
#: :data:`repro.experiments.spec.ADVERSARIES` value): a heterogeneous
#: coalition where Byzantine nodes, in id order, cycle through these
#: behaviours instead of all misbehaving identically.  "May deviate
#: arbitrarily" (Sec. II) includes deviating *differently* — a
#: coalition mixing partition-hiding bridges, crashed nodes and
#: traffic spammers is the realistic worst case the homogeneous
#: profiles bound from each side.
MIXED_ADVERSARY_CYCLE: tuple[str, ...] = ("two-faced", "silent", "spam")


class SilentNode(RoundProtocol):
    """A Byzantine node that sends nothing at all (crash-like).

    The least detectable misbehaviour: indistinguishable from a node
    whose edges simply were never announced.
    """

    def __init__(self, node_id: NodeId) -> None:
        self._node_id = node_id

    @property
    def node_id(self) -> NodeId:
        return self._node_id

    def begin_round(self, round_number: int) -> list[Outgoing]:
        return []

    def deliver(self, round_number: int, sender: NodeId, payload: Any) -> None:
        pass

    def conclude(self) -> None:
        return None


class JunkInjectorNode(RoundProtocol):
    """Sends random unparseable bytes to every neighbor each round."""

    def __init__(self, node_id: NodeId, neighbors: Iterable[NodeId], seed: int = 0,
                 junk_size: int = 64) -> None:
        self._node_id = node_id
        self._neighbors = sorted(set(neighbors))
        self._rng = random.Random(("junk", node_id, seed).__repr__())
        self._junk_size = junk_size

    @property
    def node_id(self) -> NodeId:
        return self._node_id

    def begin_round(self, round_number: int) -> list[Outgoing]:
        return [
            Outgoing(
                destination=neighbor,
                payload=RawPayload(data=self._rng.randbytes(self._junk_size)),
            )
            for neighbor in self._neighbors
        ]

    def deliver(self, round_number: int, sender: NodeId, payload: Any) -> None:
        pass

    def conclude(self) -> None:
        return None


# ----------------------------------------------------------------------
# NECTAR deviations
# ----------------------------------------------------------------------
class TwoFacedNectarNode(NectarNode):
    """Behaves correctly toward one side, crashed toward the other.

    This is the NECTAR/MtGv2 attack of Fig. 8: the Byzantine bridges
    relay faithfully for one part of the partitioned correct subgraph
    and stay mute toward the other.

    Args:
        silent_towards: neighbor ids that never receive anything.
        (remaining arguments as :class:`NectarNode`)
    """

    def __init__(self, *args, silent_towards: Iterable[NodeId] = (), **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._silent_towards = frozenset(silent_towards)

    def _keep_outgoing(self, outgoing: Outgoing, round_number: int) -> bool:
        return outgoing.destination not in self._silent_towards


class EdgeConcealingNectarNode(NectarNode):
    """Never announces its edges toward ``concealed`` neighbors.

    "Edges that connect two Byzantine nodes might never be discovered,
    which might decrease the graph's vertex connectivity below t"
    (Sec. IV).  The node still relays other nodes' announcements
    faithfully, making the omission hard to attribute.
    """

    def __init__(self, *args, concealed: Iterable[NodeId] = (), **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._concealed = frozenset(concealed)

    def _initial_proofs(self) -> list[NeighborhoodProof]:
        return [
            proof
            for proof in super()._initial_proofs()
            if not (proof.endpoints() - {self.node_id}) & self._concealed
        ]


class FictitiousEdgeNectarNode(NectarNode):
    """Announces a fabricated edge to a colluding Byzantine partner.

    Both partners hold their own private keys, so together they can
    mint a valid :class:`NeighborhoodProof` for an edge that does not
    exist — exactly the forgery boundary the model allows.  Per the
    paper this "is not an issue because these edges will never
    increase the vertex-connectivity above t if the subgraph of
    correct nodes is partitioned".

    Args:
        partner_key: the colluding partner's key pair (shared inside
            the coalition).
        scheme: needed positionally before it reaches the base class.
    """

    def __init__(self, *args, partner_key: KeyPair, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._partner_key = partner_key

    def _initial_proofs(self) -> list[NeighborhoodProof]:
        proofs = list(super()._initial_proofs())
        fake = make_proof(self._scheme, self._key_pair, self._partner_key)
        proofs.append(fake)
        return proofs


class StaleChainNectarNode(NectarNode):
    """Relays without appending its signature (chains one link short).

    Violates the invariant lengthSign(msg) = R; every correct receiver
    must reject the relays (Algorithm 1, l. 14).  Its own round-1
    announcements remain valid.
    """

    def _relay_chain(
        self, proof: NeighborhoodProof, chain: tuple[ChainLink, ...]
    ) -> tuple[ChainLink, ...]:
        if not chain:
            return super()._relay_chain(proof, chain)
        return chain  # forward unmodified: one link too short


class OverChainedNectarNode(NectarNode):
    """Appends two signature layers per relay (chains one link long).

    The dual of :class:`StaleChainNectarNode`: messages appear to come
    from the future and must equally be rejected.
    """

    def _relay_chain(
        self, proof: NeighborhoodProof, chain: tuple[ChainLink, ...]
    ) -> tuple[ChainLink, ...]:
        extended = super()._relay_chain(proof, chain)
        return super()._relay_chain(proof, extended)


class ForgingNectarNode(NectarNode):
    """Attempts to forge an edge proof naming a correct victim.

    It signs *both* proof slots with its own key — the best it can do
    without the victim's private key.  Verification of the victim's
    slot fails at every correct receiver, so the fake edge never
    enters any discovered graph (asserted by tests).
    """

    def __init__(self, *args, victim: NodeId, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if victim == self.node_id:
            raise ValueError("the victim must be another node")
        self._victim = victim

    def _initial_proofs(self) -> list[NeighborhoodProof]:
        proofs = list(super()._initial_proofs())
        # Forge by signing the victim's slot with our own key.
        forged = make_proof(self._scheme, self._key_pair, self._key_pair_as(self._victim))
        proofs.append(forged)
        return proofs

    def _key_pair_as(self, claimed_id: NodeId) -> KeyPair:
        """Our own secret dressed up with someone else's id."""
        return KeyPair(
            node_id=claimed_id,
            private_key=self._key_pair.private_key,
            public_key=self._key_pair.public_key,
        )


class SpamNectarNode(NectarNode):
    """Re-announces its whole neighborhood every round.

    Chains are padded with self-signatures to match the round number,
    so each copy passes the structural checks, is verified once, and is
    then dropped as a duplicate.  Used by the dedup ablation to measure
    the cost of announcement spam.
    """

    def begin_round(self, round_number: int) -> list[Outgoing]:
        outgoing = super().begin_round(round_number)
        if round_number == 1:
            return outgoing
        announcements = []
        for proof in self._initial_proofs():
            chain: tuple[ChainLink, ...] = ()
            for _ in range(round_number):
                chain = extend_chain(
                    self._scheme, self._key_pair, proof_bytes(proof), chain
                )
            announcements.append(EdgeAnnouncement(proof=proof, chain=chain))
        if announcements:
            batch = NectarBatch(announcements=tuple(announcements))
            for neighbor in sorted(self.neighbors):
                outgoing.append(Outgoing(destination=neighbor, payload=batch))
        return [
            out for out in outgoing if self._keep_outgoing(out, round_number)
        ]


class SleeperNectarNode(NectarNode):
    """A Byzantine node that behaves perfectly correctly.

    Allowed by the model ("may deviate arbitrarily" includes not
    deviating at all) and the worst case for attribution: it consumes
    one unit of the budget t while producing zero observable
    misbehaviour.  Combined with a silent colluder this is exactly the
    path-graph shape that used to break Validity — the correct nodes
    cannot tell whether the missing processes are a genuine cut or a
    sleeper cell that stayed quiet (see
    tests/test_known_regressions.py).
    """


class CollusionTracker:
    """Shared coordination state for an equivocating coalition.

    The coalition splits the correct nodes into two deterministic
    halves; every :class:`EquivocatingNectarNode` holding the same
    tracker shows the *same* face to the same destination, so the two
    halves each receive an internally consistent — but mutually
    contradictory — view.  Uncoordinated equivocation is easy to spot
    (stories disagree within a half); the tracker is what makes the
    attack coherent.

    The tracker also records every shaping decision, so tests can
    assert coalition-wide consistency after a run.
    """

    def __init__(self, correct: Iterable[NodeId], seed: int = 0) -> None:
        ordered = sorted(set(correct))
        rng = random.Random(("collusion", tuple(ordered), seed).__repr__())
        shuffled = list(ordered)
        rng.shuffle(shuffled)
        half = (len(shuffled) + 1) // 2
        self._halves: tuple[frozenset[NodeId], frozenset[NodeId]] = (
            frozenset(shuffled[:half]),
            frozenset(shuffled[half:]),
        )
        self._events: list[tuple[NodeId, NodeId, int]] = []

    @property
    def halves(self) -> tuple[frozenset[NodeId], frozenset[NodeId]]:
        """The (favored, starved) split of the correct nodes."""
        return self._halves

    def face_of(self, destination: NodeId) -> int:
        """0 = full view (favored half), 1 = censored view (starved)."""
        return 1 if destination in self._halves[1] else 0

    def record(self, byzantine: NodeId, destination: NodeId) -> None:
        """Log one shaping decision (sender, destination, face shown)."""
        self._events.append((byzantine, destination, self.face_of(destination)))

    @property
    def events(self) -> tuple[tuple[NodeId, NodeId, int], ...]:
        return tuple(self._events)

    def consistent(self) -> bool:
        """True iff every destination was only ever shown one face."""
        faces: dict[NodeId, int] = {}
        return all(
            faces.setdefault(destination, face) == face
            for _, destination, face in self._events
        )


class EquivocatingNectarNode(NectarNode):
    """Equivocates between the two halves of the correct nodes.

    Toward the favored half it acts fully correctly; toward the
    starved half it strips every announcement involving itself, so
    that half perceives the node (and everything only reachable
    through it) as missing.  All coalition members sharing one
    :class:`CollusionTracker` starve the *same* half, which is what
    lets the lie survive cross-checking inside each half.
    """

    def __init__(self, *args, tracker: CollusionTracker, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._tracker = tracker

    def begin_round(self, round_number: int) -> list[Outgoing]:
        shaped: list[Outgoing] = []
        for out in super().begin_round(round_number):
            if not isinstance(out.payload, NectarBatch):
                shaped.append(out)
                continue
            self._tracker.record(self.node_id, out.destination)
            if self._tracker.face_of(out.destination) == 0:
                shaped.append(out)
                continue
            kept = tuple(
                announcement
                for announcement in out.payload.announcements
                if self.node_id not in announcement.proof.endpoints()
            )
            if kept:
                shaped.append(
                    Outgoing(destination=out.destination, payload=NectarBatch(kept))
                )
        return shaped


class BadAggregatorNectarNode(NectarNode):
    """Censors relayed announcements involving a victim set.

    Round 1 is honest (its own edges are announced, keeping the node
    above suspicion); from round 2 on, any announcement whose edge
    touches a victim is silently dropped from its relays.  Where the
    node sits on many shortest paths this starves the rest of the
    network of the victims' edges — the aggregator-corruption shape,
    translated to NECTAR's relay role.
    """

    def __init__(self, *args, victims: Iterable[NodeId] = (), **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._victims = frozenset(victims)

    def begin_round(self, round_number: int) -> list[Outgoing]:
        outgoing = super().begin_round(round_number)
        if round_number == 1:
            return outgoing
        shaped: list[Outgoing] = []
        for out in outgoing:
            if not isinstance(out.payload, NectarBatch):
                shaped.append(out)
                continue
            kept = tuple(
                announcement
                for announcement in out.payload.announcements
                if not (announcement.proof.endpoints() & self._victims)
            )
            if kept:
                shaped.append(
                    Outgoing(destination=out.destination, payload=NectarBatch(kept))
                )
        return shaped


# ----------------------------------------------------------------------
# MtG deviations
# ----------------------------------------------------------------------
class SaturatingMtgNode(MtgNode):
    """Gossips an all-ones Bloom filter (the Sec. V-D MtG attack).

    Every membership test on a saturated filter succeeds, so receivers
    conclude that all n processes are reachable.
    """

    def _gossip_filter(self) -> BloomFilter:
        poisoned = self.reachable_filter.copy()
        poisoned.saturate()
        return poisoned


class TwoFacedMtgNode(MtgNode):
    """MtG node that gossips to one side only."""

    def __init__(self, *args, silent_towards: Iterable[NodeId] = (), **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._silent_towards = frozenset(silent_towards)

    def _keep_outgoing(self, outgoing: Outgoing, round_number: int) -> bool:
        return outgoing.destination not in self._silent_towards


# ----------------------------------------------------------------------
# MtGv2 deviations
# ----------------------------------------------------------------------
class TwoFacedMtgv2Node(Mtgv2Node):
    """MtGv2 node that forwards signed ids to one side only."""

    def __init__(self, *args, silent_towards: Iterable[NodeId] = (), **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._silent_towards = frozenset(silent_towards)

    def _keep_outgoing(self, outgoing: Outgoing, round_number: int) -> bool:
        return outgoing.destination not in self._silent_towards
