"""NECTAR's wire messages.

During the edge-propagation phase (Algorithm 1, ll. 5-15) nodes
exchange *edge announcements*: a neighborhood proof wrapped in a
signature chain whose length equals the round number.  All the
announcements a node sends to a given neighbor in a given round are
batched into one :class:`NectarBatch` envelope — this mirrors how a
real deployment (the paper's salticidae prototype) coalesces per-round
traffic, and the ablation bench quantifies the difference with
one-message-per-edge framing.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter

from repro.crypto.chain import ChainLink
from repro.crypto.proofs import NeighborhoodProof
from repro.crypto.sizes import WireProfile
from repro.net.codec import (
    ByteReader,
    PayloadCodec,
    pack_node_id,
    register_payload_codec,
)

#: Per-announcement framing overhead: a two-byte chain-length field.
_CHAIN_COUNT_BYTES = 2
#: Per-batch framing overhead: a two-byte announcement count.
_BATCH_COUNT_BYTES = 2


@dataclass(frozen=True)
class EdgeAnnouncement:
    """One relayed edge: σ_k(...σ_u(proof_{u,v})).

    Attributes:
        proof: the co-signed edge being announced.
        chain: the signature chain, innermost (originator) first.  A
            valid announcement received in round R carries exactly R
            links (Algorithm 1, l. 14).
    """

    proof: NeighborhoodProof
    chain: tuple[ChainLink, ...]

    def encoded_size(self, profile: WireProfile) -> int:
        """Wire size of this announcement."""
        return (
            profile.proof_bytes
            + _CHAIN_COUNT_BYTES
            + len(self.chain) * profile.chain_link_bytes
        )


@dataclass(frozen=True)
class NectarBatch:
    """All announcements one node sends to one neighbor in one round."""

    announcements: tuple[EdgeAnnouncement, ...]

    _CHAIN_OF = attrgetter("chain")

    def encoded_size(self, profile: WireProfile) -> int:
        # Equivalent to summing each announcement's encoded_size, in
        # one C-level pass over the chain lengths (this runs once per
        # envelope in the hot send loop).
        total_links = sum(map(len, map(self._CHAIN_OF, self.announcements)))
        return (
            _BATCH_COUNT_BYTES
            + len(self.announcements) * (profile.proof_bytes + _CHAIN_COUNT_BYTES)
            + total_links * profile.chain_link_bytes
        )

    def __len__(self) -> int:
        return len(self.announcements)


class NectarBatchCodec(PayloadCodec):
    """Binary codec for :class:`NectarBatch` (tag 1)."""

    tag = 1
    payload_type = NectarBatch

    def encode(self, payload: NectarBatch, profile: WireProfile) -> bytes:
        sig = profile.signature_bytes
        parts = [len(payload.announcements).to_bytes(_BATCH_COUNT_BYTES, "big")]
        for announcement in payload.announcements:
            proof = announcement.proof
            if len(proof.signature_lo) != sig or len(proof.signature_hi) != sig:
                raise ValueError(
                    "proof signature width does not match the wire profile"
                )
            parts.append(pack_node_id(proof.lo))
            parts.append(pack_node_id(proof.hi))
            parts.append(proof.signature_lo)
            parts.append(proof.signature_hi)
            parts.append(len(announcement.chain).to_bytes(_CHAIN_COUNT_BYTES, "big"))
            for link in announcement.chain:
                if len(link.signature) != sig:
                    raise ValueError(
                        "chain signature width does not match the wire profile"
                    )
                parts.append(pack_node_id(link.signer))
                parts.append(link.signature)
        return b"".join(parts)

    def decode(self, data: bytes, profile: WireProfile) -> NectarBatch:
        sig = profile.signature_bytes
        reader = ByteReader(data)
        count = reader.take_u16()
        announcements = []
        for _ in range(count):
            lo = reader.take_u16()
            hi = reader.take_u16()
            signature_lo = reader.take(sig)
            signature_hi = reader.take(sig)
            proof = NeighborhoodProof(
                edge=(lo, hi),
                signature_lo=signature_lo,
                signature_hi=signature_hi,
            )
            chain_length = reader.take_u16()
            links = tuple(
                ChainLink(signer=reader.take_u16(), signature=reader.take(sig))
                for _ in range(chain_length)
            )
            announcements.append(EdgeAnnouncement(proof=proof, chain=links))
        reader.finish()
        return NectarBatch(announcements=tuple(announcements))


register_payload_codec(NectarBatchCodec())
