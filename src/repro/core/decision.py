"""NECTAR's decision phase (Algorithm 1, ll. 16-23).

After the n - 1 propagation rounds a node computes, over its
discovered graph G_i:

* ``r`` — the number of reachable nodes (``DetectReachableNode``);
* ``k`` — the vertex connectivity (``VertexConnectivity``);

and decides NOT_PARTITIONABLE iff ``k > t and r = n``, otherwise
PARTITIONABLE with ``confirmed = (n - r > t)``.

The confirmation predicate is where Validity (Def. 3 / Theorem 2)
lives: ``confirmed = True`` at a correct node promises that the
Byzantine set really is a vertex cut.  When only ``n - r <= t``
processes are missing, *all* of them may be Byzantine processes that
simply never announced anything (silent, or correct-acting but cut
off by a silent colluder) — indistinguishable from a genuine
partition, so the node must not claim confirmed evidence.  Once
``n - r > t`` at least one missing process is correct, and since
correct processes relay faithfully for all n - 1 rounds, every path
to it must cross a Byzantine process: the Byzantine set genuinely
cuts the graph.

Because Lemma 2 guarantees all correct nodes end with the *same*
discovered graph whenever their subgraph is connected, the (costly)
connectivity computation is shared across nodes of a run through a
small memoisation keyed by the edge set.
"""

from __future__ import annotations

import functools

from repro.core.adjacency import DiscoveredGraph
from repro.graphs.connectivity import vertex_connectivity
from repro.graphs.graph import Graph
from repro.types import Decision, Edge, Verdict


@functools.lru_cache(maxsize=128)
def _cached_connectivity(
    n: int, edges: frozenset[Edge], cutoff: int | None
) -> int:
    """Vertex connectivity of the graph (n, edges), memoised.

    All correct nodes of a run typically share one discovered edge set
    (Lemma 2), so a run costs one connectivity computation instead of
    one per node.
    """
    return vertex_connectivity(Graph(n, edges), cutoff=cutoff)


def clear_connectivity_cache() -> None:
    """Drop memoised connectivity results (tests and long sweeps)."""
    _cached_connectivity.cache_clear()


def decide(
    discovered: DiscoveredGraph,
    node_id: int,
    t: int,
    connectivity_cutoff: int | None = None,
) -> Verdict:
    """Run the decision phase for one node.

    Args:
        discovered: the node's G_i after the propagation phase.
        node_id: the deciding node.
        t: the declared maximum number of Byzantine nodes.
        connectivity_cutoff: optional early-exit bound for the
            connectivity computation.  Any value above ``t`` preserves
            the decision exactly (the algorithm only compares k with
            t); the reported ``Verdict.connectivity`` is then the
            truncated value.  ``None`` computes κ exactly.

    Raises:
        ValueError: if a cutoff at or below ``t`` is requested, since
            that could corrupt the k > t comparison.
    """
    if connectivity_cutoff is not None and connectivity_cutoff <= t:
        raise ValueError(
            f"connectivity cutoff {connectivity_cutoff} would not resolve k > t"
        )
    reachable = discovered.reachable_from(node_id)
    r = len(reachable)
    n = discovered.n
    if r != n:
        # Some process is unreachable in G_i (ll. 22-24).  Confirmed
        # evidence of a partition exists only when the missing set
        # cannot consist entirely of Byzantine processes: with
        # n - r <= t every unreachable process may simply have stayed
        # silent, so claiming a confirmed cut would violate Validity
        # (Theorem 2; see the module docstring and the path-graph
        # counterexample pinned in tests/test_known_regressions.py).
        return Verdict(
            decision=Decision.PARTITIONABLE,
            confirmed=n - r > t,
            reachable=r,
            connectivity=None,
        )
    k = _cached_connectivity(n, discovered.edges(), connectivity_cutoff)
    if k > t:
        return Verdict(
            decision=Decision.NOT_PARTITIONABLE,
            confirmed=False,
            reachable=r,
            connectivity=k,
        )
    return Verdict(
        decision=Decision.PARTITIONABLE,
        confirmed=False,
        reachable=r,
        connectivity=k,
    )
