"""The discovered graph G_i of Algorithm 1.

Each node keeps "an adjacency matrix that will contain all the edges
it discovers during the algorithm's execution", holding a neighborhood
proof per known edge (Algorithm 1, ll. 1-4).  We store it sparsely as
a proof-by-edge map with an adjacency index for traversal.
"""

from __future__ import annotations

from repro.crypto.proofs import NeighborhoodProof
from repro.graphs.graph import Graph
from repro.types import Edge, NodeId, canonical_edge


class DiscoveredGraph:
    """A node's evolving view of the topology, with proofs.

    Args:
        n: total number of processes (known to all, Sec. II).
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("n must be positive")
        self._n = n
        self._proofs: dict[Edge, NeighborhoodProof] = {}
        self._adjacency: dict[NodeId, set[NodeId]] = {}

    @property
    def n(self) -> int:
        """Total number of processes in the system."""
        return self._n

    @property
    def proofs(self) -> dict[Edge, NeighborhoodProof]:
        """The proof-by-canonical-edge map (read-only by convention).

        Exposed so hot receive loops can test membership without a
        method call per delivered announcement copy; mutate only
        through :meth:`add`.
        """
        return self._proofs

    def knows(self, u: NodeId, v: NodeId) -> bool:
        """Whether the edge (u, v) is already recorded (l. 14's check)."""
        # Inlined canonicalisation: this runs once per delivered
        # announcement copy, ahead of all other validation.
        if u > v:
            u, v = v, u
        elif u == v:
            return False  # self loops are never recorded
        return (u, v) in self._proofs

    def add(self, proof: NeighborhoodProof) -> bool:
        """Record an edge's proof; returns False if already known."""
        edge = proof.edge
        if edge in self._proofs:
            return False
        u, v = edge
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise ValueError(f"edge {edge} outside the id space [0, {self._n})")
        self._proofs[edge] = proof
        self._adjacency.setdefault(u, set()).add(v)
        self._adjacency.setdefault(v, set()).add(u)
        return True

    def proof_of(self, u: NodeId, v: NodeId) -> NeighborhoodProof:
        """The recorded proof for an edge.

        Raises:
            KeyError: if the edge is unknown.
        """
        return self._proofs[canonical_edge(u, v)]

    def edge_count(self) -> int:
        """Number of recorded edges."""
        return len(self._proofs)

    def edges(self) -> frozenset[Edge]:
        """All recorded edges."""
        return frozenset(self._proofs)

    def reachable_from(self, source: NodeId) -> set[NodeId]:
        """Nodes reachable from ``source`` in the discovered graph.

        This implements ``DetectReachableNode(G_i)`` (Algorithm 1,
        l. 16): the node counts how many processes it can see a path
        to, itself included.
        """
        seen = {source}
        frontier = [source]
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in self._adjacency.get(node, ()):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return seen

    def to_graph(self) -> Graph:
        """The discovered topology as a plain :class:`Graph` on n nodes."""
        return Graph(self._n, self._proofs.keys())
