"""Analytical cost model for NECTAR (Sec. IV-E).

The paper derives NECTAR's message complexity informally: every node
forwards every edge once to (almost) all of its neighbors, so the
worst case is O(n^4), the cost grows with the edge count, and it
falls with the diameter because edges discovered early travel with
short signature chains.

This module turns that argument into an *exact* predictor for honest
runs.  In a fault-free execution the dynamics are fully determined by
the topology:

* the round in which node x discovers edge (u, v) equals the BFS
  distance from the endpoint set {u, v} to x (endpoints know it at
  round 0 and announce in round 1; each hop adds one round);
* on discovery at round r, x relays the announcement — now carrying a
  chain of r + 1 links — to every neighbor except the *first
  deliverer*, provided round r + 1 still fits in the budget;
* the first deliverer is the smallest-id neighbor one hop closer to
  the edge (the lock-step scheduler collects sends in ascending node
  order);
* endpoints announce their own edges to all neighbors in round 1 with
  one-link chains;
* one envelope (header + batch-count field) is paid per
  (node, neighbor, round) triple whose batch is non-empty.

The test suite pins ``predict_nectar_traffic`` to the simulator's
measured bytes, node by node — a strong mutual validation of the
simulator and of the paper's complexity reasoning.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.nectar import nectar_round_count
from repro.crypto.sizes import DEFAULT_PROFILE, WireProfile
from repro.graphs.graph import Graph
from repro.types import Edge, NodeId

#: Per-announcement framing inside a batch (chain-count field).
_CHAIN_COUNT_BYTES = 2
#: Per-batch framing (announcement-count field).
_BATCH_COUNT_BYTES = 2


@dataclass(frozen=True)
class TrafficPrediction:
    """Predicted honest-run traffic.

    Attributes:
        bytes_sent: exact per-node bytes, matching the simulator.
        messages_sent: exact per-node envelope counts.
    """

    bytes_sent: dict[NodeId, int]
    messages_sent: dict[NodeId, int]

    @property
    def total_bytes(self) -> int:
        """Sum of bytes over all nodes."""
        return sum(self.bytes_sent.values())

    def mean_kb_per_node(self) -> float:
        """The paper's metric: average KB sent per node."""
        if not self.bytes_sent:
            raise ValueError("prediction over an empty deployment")
        return self.total_bytes / len(self.bytes_sent) / 1000.0


def _edge_discovery_rounds(graph: Graph, edge: Edge) -> dict[NodeId, int]:
    """BFS distance from the endpoint set of ``edge`` to every node."""
    u, v = edge
    distances = {u: 0, v: 0}
    frontier = deque((u, v))
    while frontier:
        node = frontier.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                frontier.append(neighbor)
    return distances


def _announcement_bytes(profile: WireProfile, chain_length: int) -> int:
    return (
        profile.proof_bytes
        + _CHAIN_COUNT_BYTES
        + chain_length * profile.chain_link_bytes
    )


def predict_nectar_traffic(
    graph: Graph,
    profile: WireProfile = DEFAULT_PROFILE,
    rounds: int | None = None,
) -> TrafficPrediction:
    """Exact traffic of an honest, batched NECTAR run on ``graph``.

    Args:
        graph: the topology.
        profile: wire profile (must match the run being predicted).
        rounds: round budget; defaults to n - 1 as in Algorithm 1.

    Returns:
        Per-node bytes and envelope counts identical to what
        :class:`repro.net.simulator.SyncNetwork` measures for a run
        with honest :class:`repro.core.nectar.NectarNode` instances.
    """
    if rounds is None:
        rounds = nectar_round_count(graph.n)
    bytes_sent: dict[NodeId, int] = {v: 0 for v in graph.nodes()}
    messages_sent: dict[NodeId, int] = {v: 0 for v in graph.nodes()}
    envelope_overhead = _BATCH_COUNT_BYTES + profile.envelope_header_bytes

    # Round 1: every node with neighbors batches its own edges to each
    # neighbor (no exclusions).
    for node in graph.nodes():
        degree = graph.degree(node)
        if degree == 0:
            continue
        batch_bytes = degree * _announcement_bytes(profile, 1) + envelope_overhead
        bytes_sent[node] += degree * batch_bytes
        messages_sent[node] += degree

    # Relays: per (node, relay round), collect the relayed entry bytes
    # and the per-neighbor exclusions.
    relayed_bytes: dict[tuple[NodeId, int], int] = {}
    exclusion_hits: dict[tuple[NodeId, int], dict[NodeId, int]] = {}
    for edge in graph.edges():
        discovery = _edge_discovery_rounds(graph, edge)
        for node, round_discovered in discovery.items():
            if round_discovered == 0:
                continue  # endpoint: announced in round 1 already
            relay_round = round_discovered + 1
            if round_discovered > rounds or relay_round > rounds:
                continue  # learned too late to relay within the budget
            if graph.degree(node) <= 1:
                continue  # leaf: nobody left to relay to
            first_deliverer = min(
                neighbor
                for neighbor in graph.neighbors(node)
                if discovery.get(neighbor) == round_discovered - 1
            )
            key = (node, relay_round)
            relayed_bytes[key] = relayed_bytes.get(key, 0) + _announcement_bytes(
                profile, relay_round
            )
            hits = exclusion_hits.setdefault(key, {})
            hits[first_deliverer] = hits.get(first_deliverer, 0) + 1

    for (node, _round), entry_bytes_sum in relayed_bytes.items():
        degree = graph.degree(node)
        hits = exclusion_hits[(node, _round)]
        entry_count = sum(hits.values())
        # Each entry reaches degree - 1 neighbors; a neighbor receives
        # an envelope iff at least one entry is not excluded toward it,
        # i.e. unless every entry of the round came from that neighbor.
        recipients = degree
        for neighbor in graph.neighbors(node):
            if hits.get(neighbor, 0) == entry_count:
                recipients -= 1
        bytes_sent[node] += (
            (degree - 1) * entry_bytes_sum + recipients * envelope_overhead
        )
        messages_sent[node] += recipients
    return TrafficPrediction(bytes_sent=bytes_sent, messages_sent=messages_sent)
