"""NECTAR — Neighbors Exploring Connections Toward Adversary Resilience.

This is Algorithm 1 of the paper, as a :class:`repro.net.simulator.
RoundProtocol` that runs unchanged on the lock-step and asyncio
backends.

Inputs, per node i (Sec. IV-A): the system size ``n``, the Byzantine
bound ``t``, the neighborhood Γ(i), and a proof of neighborhood for
each neighbor.  Output: a :class:`repro.types.Verdict` with the
NOT_PARTITIONABLE / PARTITIONABLE decision and the ``confirmed`` flag.

Protected hooks (``_initial_proofs``, ``_relay_chain``,
``_keep_outgoing``) exist so that Byzantine behaviours in
:mod:`repro.adversary.behaviors` can deviate in precisely controlled
ways while reusing the honest machinery; honest nodes never override
them.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.core.adjacency import DiscoveredGraph
from repro.core.decision import decide
from repro.core.messages import EdgeAnnouncement, NectarBatch
from repro.core.validation import AnnouncementValidator, ValidationMode
from repro.crypto.cache import VerificationCache
from repro.crypto.chain import ChainLink, extend_chain
from repro.crypto.proofs import NeighborhoodProof, proof_bytes
from repro.crypto.signer import KeyPair, PublicDirectory, SignatureScheme
from repro.errors import ProtocolError
from repro.net.message import Outgoing
from repro.net.simulator import RoundProtocol
from repro.types import NodeId, Verdict


def nectar_round_count(n: int) -> int:
    """The number of propagation rounds, R = n - 1 (Sec. IV-B).

    n - 1 is the smallest value that is safe without topology
    knowledge (the worst case being the chain topology).
    """
    if n < 1:
        raise ValueError("n must be positive")
    return max(1, n - 1)


class NectarNode(RoundProtocol):
    """One NECTAR process.

    Args:
        node_id: this process's id.
        n: total number of processes (known to all).
        t: maximum number of Byzantine processes.
        key_pair: this process's signing keys.
        scheme: the signature scheme shared by the deployment.
        directory: the public-key directory.
        neighbor_proofs: proof of neighborhood for each neighbor
            (keyed by neighbor id); defines Γ(i).
        validation_mode: FULL (default) or ACCOUNTING (adversary-free
            cost sweeps only).
        connectivity_cutoff: optional early-exit bound for the decision
            phase's connectivity computation (must exceed ``t``).
        verification_cache: optional
            :class:`repro.crypto.cache.VerificationCache` memoizing
            rules 4-5 of validation.  Pass a per-node instance to bound
            replay verification, or share one across a simulated
            deployment to verify each signature once globally
            (DESIGN.md §6.1); ``None`` verifies every time.
    """

    def __init__(
        self,
        node_id: NodeId,
        n: int,
        t: int,
        key_pair: KeyPair,
        scheme: SignatureScheme,
        directory: PublicDirectory,
        neighbor_proofs: Mapping[NodeId, NeighborhoodProof],
        validation_mode: ValidationMode = ValidationMode.FULL,
        connectivity_cutoff: int | None = None,
        batching: bool = True,
        verification_cache: VerificationCache | None = None,
    ) -> None:
        if t < 0:
            raise ProtocolError("t must be non-negative")
        if key_pair.node_id != node_id:
            raise ProtocolError("key pair does not belong to this node")
        for neighbor, proof in neighbor_proofs.items():
            if neighbor == node_id:
                raise ProtocolError("a node cannot neighbor itself")
            if frozenset((node_id, neighbor)) != proof.endpoints():
                raise ProtocolError(
                    f"proof for neighbor {neighbor} does not cover the edge"
                )
        self._node_id = node_id
        self._n = n
        self._t = t
        self._key_pair = key_pair
        self._scheme = scheme
        self._directory = directory
        self._neighbors = frozenset(neighbor_proofs)
        self._neighbor_proofs = dict(neighbor_proofs)
        self._validator = AnnouncementValidator(
            scheme, directory, validation_mode, cache=verification_cache
        )
        self._connectivity_cutoff = connectivity_cutoff
        # Batched framing (default) coalesces all announcements for a
        # neighbor into one envelope per round; per-edge framing pays
        # one envelope header per announcement (measured by the
        # batching ablation, DESIGN.md §5.3).
        self._batching = batching
        # Initialising G_i (Algorithm 1, ll. 1-4).
        self._discovered = DiscoveredGraph(n)
        for proof in self._neighbor_proofs.values():
            self._discovered.add(proof)
        # to_be_sent: announcements accepted this round, to relay next
        # round, with the neighbor they came from (excluded on relay).
        self._pending: list[tuple[EdgeAnnouncement, NodeId]] = []
        self._decided = False
        self._verdict: Verdict | None = None

    # ------------------------------------------------------------------
    # RoundProtocol interface
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> NodeId:
        return self._node_id

    @property
    def neighbors(self) -> frozenset[NodeId]:
        """Γ(i)."""
        return self._neighbors

    @property
    def discovered(self) -> DiscoveredGraph:
        """This node's G_i (read access for tests and reports)."""
        return self._discovered

    def begin_round(self, round_number: int) -> list[Outgoing]:
        if round_number == 1:
            outgoing = self._first_round_sends()
        else:
            outgoing = self._relay_sends(round_number)
        return [out for out in outgoing if self._keep_outgoing(out, round_number)]

    def deliver(self, round_number: int, sender: NodeId, payload: Any) -> None:
        if not isinstance(payload, NectarBatch):
            return  # foreign or junk payload: ignore (l. 13)
        # Local bindings: this loop runs once per announcement copy per
        # receiver and dominates large sweeps.
        discovered = self._discovered
        known = discovered.proofs
        validate = self._validator.validate
        pending = self._pending
        for announcement in payload.announcements:
            proof = announcement.proof
            # Dedup before any signature work: an already-known edge is
            # skipped outright (l. 14), which also bounds the
            # verification load under announcement spam (see the
            # dedup ablation).  Known edges are keyed canonically;
            # probe that orientation (self loops match nothing and
            # die in validation, as before).
            lo, hi = proof.edge
            if lo > hi:
                lo, hi = hi, lo
            if lo != hi and (lo, hi) in known:
                continue
            if not validate(announcement, round_number, sender):
                continue
            discovered.add(proof)
            pending.append((announcement, sender))

    def conclude(self) -> Verdict:
        if self._decided:
            raise ProtocolError("decide() is one-shot (Sec. III-D)")
        self._decided = True
        self._verdict = decide(
            self._discovered,
            self._node_id,
            self._t,
            connectivity_cutoff=self._connectivity_cutoff,
        )
        return self._verdict

    # ------------------------------------------------------------------
    # Send construction
    # ------------------------------------------------------------------
    def _first_round_sends(self) -> list[Outgoing]:
        """Round 1: send {σ_i(proof_{i,j})} for j in Γ(i) to every neighbor."""
        announcements = []
        for proof in self._initial_proofs():
            chain = self._relay_chain(proof, ())
            announcements.append(EdgeAnnouncement(proof=proof, chain=chain))
        if not announcements:
            return []
        return self._frame(
            [(neighbor, tuple(announcements)) for neighbor in sorted(self._neighbors)]
        )

    def _relay_sends(self, round_number: int) -> list[Outgoing]:
        """Rounds >= 2: relay last round's new edges, extending chains."""
        if not self._pending:
            return []
        extended: list[tuple[EdgeAnnouncement, NodeId]] = []
        for announcement, source in self._pending:
            chain = self._relay_chain(announcement.proof, announcement.chain)
            extended.append(
                (EdgeAnnouncement(proof=announcement.proof, chain=chain), source)
            )
        self._pending = []
        everything = tuple(announcement for announcement, _ in extended)
        # Deliveries arrive one envelope at a time, so the pending list
        # is grouped by source; excluding a source is then a contiguous
        # slice removal (order-preserving, and O(1) Python work per
        # neighbor instead of a per-announcement filter).  Fall back to
        # filtering if a deviant delivery pattern broke the grouping.
        spans: dict[NodeId, tuple[int, int]] = {}
        contiguous = True
        previous: NodeId | None = None
        for index, (_, source) in enumerate(extended):
            if source != previous:
                if source in spans:
                    contiguous = False
                    break
                spans[source] = (index, index + 1)
                previous = source
            else:
                start, _ = spans[source]
                spans[source] = (start, index + 1)
        per_neighbor = []
        for neighbor in sorted(self._neighbors):
            if contiguous:
                span = spans.get(neighbor)
                if span is None:
                    entries = everything  # nothing to exclude: share
                else:
                    entries = everything[: span[0]] + everything[span[1]:]
            else:
                entries = tuple(
                    announcement
                    for announcement, source in extended
                    if source != neighbor
                )
            if entries:
                per_neighbor.append((neighbor, entries))
        return self._frame(per_neighbor)

    def _frame(
        self,
        per_neighbor: list[tuple[NodeId, tuple[EdgeAnnouncement, ...]]],
    ) -> list[Outgoing]:
        """Wrap per-neighbor announcement sets into envelopes."""
        outgoing = []
        for neighbor, entries in per_neighbor:
            if self._batching:
                outgoing.append(
                    Outgoing(destination=neighbor, payload=NectarBatch(entries))
                )
            else:
                outgoing.extend(
                    Outgoing(destination=neighbor, payload=NectarBatch((entry,)))
                    for entry in entries
                )
        return outgoing

    # ------------------------------------------------------------------
    # Hooks for controlled Byzantine deviation (honest nodes use the
    # defaults; see repro.adversary.behaviors)
    # ------------------------------------------------------------------
    def _initial_proofs(self) -> Iterable[NeighborhoodProof]:
        """The proofs announced in round 1: the full neighborhood."""
        return [
            self._neighbor_proofs[neighbor]
            for neighbor in sorted(self._neighbor_proofs)
        ]

    def _relay_chain(
        self, proof: NeighborhoodProof, chain: tuple[ChainLink, ...]
    ) -> tuple[ChainLink, ...]:
        """Extend (or create) the signature chain with our own layer."""
        cache = self._validator.cache
        if cache is not None:
            # Byte-identical to extend_chain; additionally hands the
            # signed message bytes to the extension's first verifier.
            return cache.extend_chain(
                self._scheme, self._key_pair, proof_bytes(proof), chain
            )
        return extend_chain(self._scheme, self._key_pair, proof_bytes(proof), chain)

    def _keep_outgoing(self, outgoing: Outgoing, round_number: int) -> bool:
        """Final say on each send; honest nodes send everything."""
        return True
