"""NECTAR: the paper's primary contribution (Algorithm 1)."""

from repro.core.adjacency import DiscoveredGraph
from repro.core.complexity import TrafficPrediction, predict_nectar_traffic
from repro.core.decision import clear_connectivity_cache, decide
from repro.core.messages import EdgeAnnouncement, NectarBatch
from repro.core.nectar import NectarNode, nectar_round_count
from repro.core.validation import AnnouncementValidator, ValidationMode

__all__ = [
    "DiscoveredGraph",
    "TrafficPrediction",
    "predict_nectar_traffic",
    "clear_connectivity_cache",
    "decide",
    "EdgeAnnouncement",
    "NectarBatch",
    "NectarNode",
    "nectar_round_count",
    "AnnouncementValidator",
    "ValidationMode",
]
