"""Acceptance rules for edge announcements.

"Invalid messages are ignored" (Algorithm 1, l. 13).  This module
centralises what *valid* means for an announcement delivered by
neighbor ``sender`` during round ``R``:

1. the chain carries exactly ``R`` links — a correct execution always
   yields chain length equal to the round number, and the check stops
   Byzantine nodes from replaying announcements late (l. 14);
2. the outermost link was signed by the delivering neighbor — the
   message is ``σ_k(...)`` received *from* k (l. 13);
3. the innermost link was signed by an endpoint of the edge — round 1
   messages are ``σ_i(proof_{i,j})`` sent by ``i`` itself (l. 8);
4. the neighborhood proof verifies (both endpoint signatures);
5. every chain link verifies against the public directory.

Checks 4-5 are the cryptographic ones; in ``ValidationMode.ACCOUNTING``
they are skipped so that adversary-free cost sweeps (Figs. 3-7) run
fast, while the structural checks 1-3 always apply.  The experiment
runner refuses ACCOUNTING mode in runs containing Byzantine nodes.

Checks 4-5 are also pure functions of the announcement, so a
:class:`repro.crypto.cache.VerificationCache` can memoize them without
changing a single accept/reject decision (DESIGN.md §6.1); pass one to
the constructor to enable it.  A cache shared across the nodes of a
simulated deployment verifies every distinct signature once globally.
"""

from __future__ import annotations

import enum

from repro.core.messages import EdgeAnnouncement
from repro.crypto.cache import VerificationCache
from repro.crypto.chain import verify_chain
from repro.crypto.proofs import proof_bytes, verify_proof
from repro.crypto.signer import PublicDirectory, SignatureScheme
from repro.types import NodeId


class ValidationMode(enum.Enum):
    """How much of an announcement to verify."""

    #: Verify everything, including all signatures.
    FULL = "full"
    #: Structural checks only; for adversary-free cost measurements.
    ACCOUNTING = "accounting"


class AnnouncementValidator:
    """Stateless validator for :class:`EdgeAnnouncement` objects."""

    def __init__(
        self,
        scheme: SignatureScheme,
        directory: PublicDirectory,
        mode: ValidationMode = ValidationMode.FULL,
        cache: VerificationCache | None = None,
    ) -> None:
        self._scheme = scheme
        self._directory = directory
        self._mode = mode
        self._cache = cache

    @property
    def mode(self) -> ValidationMode:
        """The configured validation mode."""
        return self._mode

    @property
    def cache(self) -> VerificationCache | None:
        """The verification cache, if one was injected."""
        return self._cache

    def validate(
        self,
        announcement: EdgeAnnouncement,
        round_number: int,
        sender: NodeId,
    ) -> bool:
        """Apply the acceptance rules; True means accept."""
        chain = announcement.chain
        proof = announcement.proof
        # Rule 1: lengthSign(msg) = R.
        if len(chain) != round_number:
            return False
        # Rule 2: the outermost signer is the delivering neighbor.
        if chain[-1].signer != sender:
            return False
        # Rule 3: the originator is an endpoint of the announced edge.
        originator = chain[0].signer
        if originator != proof.edge[0] and originator != proof.edge[1]:
            return False
        if proof.lo == proof.hi:
            return False
        if self._mode is ValidationMode.ACCOUNTING:
            return True
        if self._cache is not None:
            # Rules 4-5, memoized: same signatures, checked once.
            return self._cache.verify_announcement(
                self._scheme, self._directory, announcement
            )
        # Rule 4: the proof itself is co-signed by both endpoints.
        if not verify_proof(self._scheme, self._directory, proof):
            return False
        # Rule 5: every chain layer verifies.
        return verify_chain(
            self._scheme, self._directory, proof_bytes(proof), chain
        )
