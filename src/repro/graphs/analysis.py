"""Graph analysis helpers: diameter, components, summary statistics.

Used by the experiment layer to compute ground truth (Sec. III) and by
reports/examples to describe topologies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.connectivity import vertex_connectivity
from repro.graphs.graph import Graph


def diameter(graph: Graph) -> int | None:
    """Longest shortest path, or ``None`` for a disconnected graph.

    The paper notes that NECTAR stops learning new edges after the
    round matching the diameter (Sec. IV-B, Decision phase), which the
    round-silence ablation measures.
    """
    worst = 0
    for source in graph.nodes():
        distances = graph.bfs_distances(source)
        if len(distances) != graph.n:
            return None
        worst = max(worst, max(distances.values()))
    return worst


def correct_subgraph(graph: Graph, byzantine) -> Graph:
    """The subgraph induced by the correct nodes (ids preserved)."""
    return graph.without_nodes(byzantine)


def correct_subgraph_partitioned(graph: Graph, byzantine) -> bool:
    """Whether the correct nodes' subgraph is disconnected (Lemma 3).

    Isolated correct nodes count as disconnection; with fewer than two
    correct nodes there is no pair to separate, hence no partition.
    """
    byzantine_set = frozenset(byzantine)
    correct = [v for v in graph.nodes() if v not in byzantine_set]
    if len(correct) <= 1:
        return False
    stripped = graph.without_nodes(byzantine_set)
    reachable = stripped.bfs_reachable(correct[0], forbidden=byzantine_set)
    return len(reachable) != len(correct)


@dataclass(frozen=True)
class GraphSummary:
    """Descriptive statistics of a topology.

    Attributes:
        n: node count.
        edges: edge count.
        min_degree: minimum degree.
        max_degree: maximum degree.
        connectivity: vertex connectivity κ.
        diameter: graph diameter, ``None`` if disconnected.
        connected: whether the graph is connected.
    """

    n: int
    edges: int
    min_degree: int
    max_degree: int
    connectivity: int
    diameter: int | None
    connected: bool

    def describe(self) -> str:
        """One-line human-readable description."""
        diam = "∞" if self.diameter is None else str(self.diameter)
        return (
            f"n={self.n} m={self.edges} κ={self.connectivity} "
            f"deg∈[{self.min_degree},{self.max_degree}] diam={diam}"
        )


def summarize(graph: Graph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    degrees = [graph.degree(v) for v in graph.nodes()]
    return GraphSummary(
        n=graph.n,
        edges=graph.edge_count,
        min_degree=min(degrees),
        max_degree=max(degrees),
        connectivity=vertex_connectivity(graph),
        diameter=diameter(graph),
        connected=graph.is_connected(),
    )
