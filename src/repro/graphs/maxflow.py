"""Dinic's maximum-flow algorithm on unit-capacity digraphs.

This is the flow engine behind vertex-connectivity computation
(:mod:`repro.graphs.connectivity`): local connectivity κ(s, t) equals
the max flow in the standard vertex-split digraph by Menger's theorem
[20 in the paper].  Capacities in that construction are 0/1/∞, so a
compact adjacency-list Dinic with integer capacities suffices.
"""

from __future__ import annotations

from collections import deque

#: Stand-in for infinite capacity; larger than any cut in our graphs.
INFINITY = 10**9


class FlowNetwork:
    """A directed flow network with integer capacities.

    Vertices are dense integers ``0 .. vertex_count-1``; edges are
    added with :meth:`add_edge`, which also creates the residual
    reverse edge.
    """

    def __init__(self, vertex_count: int) -> None:
        if vertex_count < 1:
            raise ValueError("a flow network needs at least one vertex")
        self.vertex_count = vertex_count
        # Edge arrays: edge i goes to _to[i] with residual capacity
        # _capacity[i]; edge i ^ 1 is its reverse.
        self._to: list[int] = []
        self._capacity: list[int] = []
        self._outgoing: list[list[int]] = [[] for _ in range(vertex_count)]
        # Scratch arrays for the Dinic phases, allocated once per
        # network and reset in place via the matching templates: the
        # vertex-connectivity sweeps build O(n²) flow networks and run
        # several phases on each, so per-phase list allocation shows up.
        self._levels = [-1] * vertex_count
        self._next_edge = [0] * vertex_count
        self._level_template = [-1] * vertex_count
        self._next_template = [0] * vertex_count

    def add_edge(self, source: int, target: int, capacity: int) -> None:
        """Add a directed edge and its zero-capacity residual twin."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        for endpoint in (source, target):
            if not 0 <= endpoint < self.vertex_count:
                raise ValueError(f"vertex {endpoint} out of range")
        self._outgoing[source].append(len(self._to))
        self._to.append(target)
        self._capacity.append(capacity)
        self._outgoing[target].append(len(self._to))
        self._to.append(source)
        self._capacity.append(0)

    # ------------------------------------------------------------------
    # Capacity snapshots (reusable networks)
    # ------------------------------------------------------------------
    def capacity_template(self) -> list[int]:
        """A snapshot of the current residual capacities.

        Callers that run many max-flow queries on the same arc
        structure (the batched κ kernel re-terminalises one shared
        vertex-split network per (s, t) pair) snapshot the pristine
        capacities once and restore them with
        :meth:`reset_capacities` instead of rebuilding the network.
        """
        return self._capacity.copy()

    def reset_capacities(self, template: list[int]) -> None:
        """Restore residual capacities from a template, in place."""
        if len(template) != len(self._capacity):
            raise ValueError("capacity template does not match edge count")
        self._capacity[:] = template

    def set_edge_capacity(self, edge_index: int, capacity: int) -> None:
        """Overwrite one arc's residual capacity (template patching).

        Arc indices follow insertion order: the i-th :meth:`add_edge`
        call creates the forward arc ``2 * i`` and its residual twin
        ``2 * i + 1``.
        """
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._capacity[edge_index] = capacity

    # ------------------------------------------------------------------
    # Dinic phases
    # ------------------------------------------------------------------
    def _build_levels(self, source: int, sink: int) -> list[int] | None:
        levels = self._levels
        levels[:] = self._level_template
        levels[source] = 0
        queue = deque([source])
        while queue:
            vertex = queue.popleft()
            for edge_index in self._outgoing[vertex]:
                target = self._to[edge_index]
                if self._capacity[edge_index] > 0 and levels[target] < 0:
                    levels[target] = levels[vertex] + 1
                    queue.append(target)
        if levels[sink] < 0:
            return None
        return levels

    def _augment(
        self,
        vertex: int,
        sink: int,
        pushed: int,
        levels: list[int],
        next_edge: list[int],
    ) -> int:
        if vertex == sink:
            return pushed
        while next_edge[vertex] < len(self._outgoing[vertex]):
            edge_index = self._outgoing[vertex][next_edge[vertex]]
            target = self._to[edge_index]
            if self._capacity[edge_index] > 0 and levels[target] == levels[vertex] + 1:
                flow = self._augment(
                    target,
                    sink,
                    min(pushed, self._capacity[edge_index]),
                    levels,
                    next_edge,
                )
                if flow > 0:
                    self._capacity[edge_index] -= flow
                    self._capacity[edge_index ^ 1] += flow
                    return flow
            next_edge[vertex] += 1
        return 0

    def residual_reachable(self, source: int) -> set[int]:
        """Vertices reachable from ``source`` in the residual network.

        Call after :meth:`max_flow` to extract a minimum cut: the cut
        edges are exactly the saturated edges crossing the boundary of
        this set (max-flow/min-cut theorem).
        """
        seen = {source}
        queue = deque([source])
        while queue:
            vertex = queue.popleft()
            for edge_index in self._outgoing[vertex]:
                target = self._to[edge_index]
                if self._capacity[edge_index] > 0 and target not in seen:
                    seen.add(target)
                    queue.append(target)
        return seen

    def max_flow(self, source: int, sink: int, cutoff: int | None = None) -> int:
        """Compute the maximum flow from ``source`` to ``sink``.

        Args:
            source: flow source vertex.
            sink: flow sink vertex.
            cutoff: optional early-exit bound — once the flow reaches
                ``cutoff`` the exact value no longer matters to the
                caller (used by connectivity, which only needs to know
                whether κ(s, t) is below the current minimum).

        Returns:
            The max-flow value, possibly truncated at ``cutoff``.
        """
        if source == sink:
            raise ValueError("source and sink must differ")
        if cutoff is not None and cutoff <= 2:
            # Adjacency-degree fast path: the flow cannot exceed the
            # residual out-degree of the source or in-degree of the
            # sink, and at most two shortest-path augmentations decide
            # a cutoff <= 2 query — skipping the Dinic level machinery
            # entirely.  This is the regime NECTAR's decision phase
            # lives in (κ compared against small t).
            capacity_bound = min(
                self._residual_out_capacity(source, cutoff),
                self._residual_in_capacity(sink, cutoff),
            )
            cutoff = min(cutoff, capacity_bound)
            total = 0
            while total < cutoff:
                pushed = self._augment_shortest(source, sink, cutoff - total)
                if pushed == 0:
                    return total
                total += pushed
            return cutoff
        total = 0
        while True:
            levels = self._build_levels(source, sink)
            if levels is None:
                if cutoff is not None:
                    return min(total, cutoff)
                return total
            next_edge = self._next_edge
            next_edge[:] = self._next_template
            while True:
                pushed = self._augment(source, sink, INFINITY, levels, next_edge)
                if pushed == 0:
                    break
                total += pushed
                if cutoff is not None and total >= cutoff:
                    return cutoff

    # ------------------------------------------------------------------
    # cutoff <= 2 fast path
    # ------------------------------------------------------------------
    def _residual_out_capacity(self, vertex: int, limit: int) -> int:
        """Residual capacity leaving ``vertex``, saturated at ``limit``.

        In the vertex-split connectivity networks the source's out-arcs
        all enter unit internal arcs, so this is exactly the adjacency
        degree — but the sum form stays correct for arbitrary
        capacities.
        """
        capacity = self._capacity
        total = 0
        for edge_index in self._outgoing[vertex]:
            if capacity[edge_index] > 0:
                total += capacity[edge_index]
                if total >= limit:
                    return limit
        return total

    def _residual_in_capacity(self, vertex: int, limit: int) -> int:
        """Residual capacity entering ``vertex``, saturated at ``limit``.

        Each incoming edge's index is the reverse (``^ 1``) of an index
        listed in the vertex's outgoing adjacency.
        """
        capacity = self._capacity
        total = 0
        for edge_index in self._outgoing[vertex]:
            if capacity[edge_index ^ 1] > 0:
                total += capacity[edge_index ^ 1]
                if total >= limit:
                    return limit
        return total

    def _augment_shortest(self, source: int, sink: int, limit: int) -> int:
        """One Edmonds–Karp step: push along a shortest residual path.

        Returns the amount pushed (0 when the sink is unreachable).
        Correctness does not depend on path choice — any augmenting
        path preserves max-flow optimality — so interleaving this with
        the Dinic phases is safe; it is only used when ``cutoff``
        bounds the answer by 2, where one BFS per flow unit is cheaper
        than building level graphs.
        """
        parent_edge = self._levels  # reuse the scratch array
        parent_edge[:] = self._level_template
        parent_edge[source] = -2
        queue = deque([source])
        capacity = self._capacity
        while queue:
            vertex = queue.popleft()
            if vertex == sink:
                break
            for edge_index in self._outgoing[vertex]:
                target = self._to[edge_index]
                if capacity[edge_index] > 0 and parent_edge[target] == -1:
                    parent_edge[target] = edge_index
                    queue.append(target)
        if parent_edge[sink] == -1:
            return 0
        # Walk back to find the bottleneck, then apply it.
        bottleneck = limit
        vertex = sink
        while vertex != source:
            edge_index = parent_edge[vertex]
            bottleneck = min(bottleneck, capacity[edge_index])
            vertex = self._to[edge_index ^ 1]
        vertex = sink
        while vertex != source:
            edge_index = parent_edge[vertex]
            capacity[edge_index] -= bottleneck
            capacity[edge_index ^ 1] += bottleneck
            vertex = self._to[edge_index ^ 1]
        return bottleneck
