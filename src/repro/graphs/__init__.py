"""Graph substrate: structure, connectivity, analysis, generators."""

from repro.graphs.analysis import (
    GraphSummary,
    correct_subgraph,
    correct_subgraph_partitioned,
    diameter,
    summarize,
)
from repro.graphs.connectivity import (
    is_byzantine_partitionable,
    is_vertex_cut,
    local_connectivity,
    minimum_st_vertex_cut,
    minimum_vertex_cut,
    vertex_connectivity,
)
from repro.graphs.graph import Graph, complete_graph_edges, graph_from_adjacency
from repro.graphs.maxflow import INFINITY, FlowNetwork

__all__ = [
    "GraphSummary",
    "correct_subgraph",
    "correct_subgraph_partitioned",
    "diameter",
    "summarize",
    "is_byzantine_partitionable",
    "is_vertex_cut",
    "local_connectivity",
    "minimum_st_vertex_cut",
    "minimum_vertex_cut",
    "vertex_connectivity",
    "Graph",
    "complete_graph_edges",
    "graph_from_adjacency",
    "INFINITY",
    "FlowNetwork",
]
