"""The drone scenario: two-cluster random geometric graphs (Sec. V-B).

"We create random graphs by generating random nodes in a 2D space, and
a scope parameter decides edges: if two nodes are close enough (i.e.,
their distance is lower than radius), then we add an edge between
them.  Those nodes are randomly generated around two barycenters."

The scenario "aims to model a drone network, where two drone scatters
are moving away or approaching in space" (Fig. 2).  Parameters, as in
Figs. 4-8: ``n`` nodes split between the scatters, distance ``d``
between barycenters, communication scope ``radius``.

Calibration: drones are drawn uniformly in a disc of radius 1 around
their barycenter.  This matches the paper's anchor points — at d = 0
and radius = 2.4 the graph is complete (any two points of a unit disc
are at most 2 apart) and at d = 6 the graph is partitioned into the
two scatters (the gap between discs is 4 > 2.4).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import TopologyError
from repro.graphs.graph import Graph
from repro.types import NodeId

#: Radius of the disc each scatter is drawn in (see module docstring).
CLUSTER_RADIUS = 1.0


@dataclass(frozen=True)
class DroneDeployment:
    """A generated drone topology together with its geometry.

    Attributes:
        graph: the communication graph (edge iff distance < radius).
        positions: 2D position of each node.
        left_cluster: node ids of the scatter centered at the origin.
        right_cluster: node ids of the scatter centered at (d, 0).
        d: distance between barycenters.
        radius: communication scope.
    """

    graph: Graph
    positions: tuple[tuple[float, float], ...]
    left_cluster: frozenset[NodeId]
    right_cluster: frozenset[NodeId]
    d: float
    radius: float


def _uniform_disc_point(
    rng: random.Random, center_x: float, center_y: float
) -> tuple[float, float]:
    """A point uniform in the disc of radius CLUSTER_RADIUS around a center."""
    # Inverse-CDF sampling: radius density is linear in a disc.
    rho = CLUSTER_RADIUS * math.sqrt(rng.random())
    theta = rng.random() * 2.0 * math.pi
    return (center_x + rho * math.cos(theta), center_y + rho * math.sin(theta))


def drone_deployment(
    n: int, d: float, radius: float, seed: int = 0
) -> DroneDeployment:
    """Generate one drone scenario instance.

    Args:
        n: total number of drones; split as evenly as possible between
            the two scatters.
        d: distance between the two barycenters.
        radius: communication scope (an edge exists iff the Euclidean
            distance is strictly below ``radius``).
        seed: RNG seed; same seed, same deployment.

    Raises:
        TopologyError: on non-positive ``radius`` or ``n < 2``.
    """
    if n < 2:
        raise TopologyError("a drone scenario needs at least 2 drones")
    if radius <= 0:
        raise TopologyError("communication radius must be positive")
    if d < 0:
        raise TopologyError("barycenter distance cannot be negative")
    rng = random.Random(("drone", n, d, radius, seed).__repr__())
    left_count = n // 2
    positions: list[tuple[float, float]] = []
    for _ in range(left_count):
        positions.append(_uniform_disc_point(rng, 0.0, 0.0))
    for _ in range(n - left_count):
        positions.append(_uniform_disc_point(rng, d, 0.0))
    edges = []
    for u in range(n):
        ux, uy = positions[u]
        for v in range(u + 1, n):
            vx, vy = positions[v]
            if math.hypot(ux - vx, uy - vy) < radius:
                edges.append((u, v))
    return DroneDeployment(
        graph=Graph(n, edges),
        positions=tuple(positions),
        left_cluster=frozenset(range(left_count)),
        right_cluster=frozenset(range(left_count, n)),
        d=d,
        radius=radius,
    )


def drone_graph(n: int, d: float, radius: float, seed: int = 0) -> Graph:
    """Just the graph of :func:`drone_deployment`."""
    return drone_deployment(n, d, radius, seed=seed).graph
