"""Mobile topology sequences (MANET substrate).

The paper motivates partition detection with mobile ad hoc networks
(Sec. I and the MtG/Ritter related work [4, 6]) and handles evolving
graphs by assuming stability during each run (footnote 2).  This
module generates the evolving topologies those runs observe:

* :func:`random_waypoint_mission` — the classic random-waypoint
  mobility model: each node picks a waypoint in the arena, moves
  toward it at its speed, then picks another;
* :func:`drifting_scatters_mission` — the Fig. 2 storyline as a
  topology sequence: two drone scatters separating (or approaching)
  step by step.

Both yield one proximity graph per time step, ready for
:class:`repro.extensions.monitor.PartitionMonitor` and the mission
layer (:mod:`repro.experiments.mission`, DESIGN.md §10), whose
``drifting-scatters`` / ``waypoint`` trajectory kinds are declarative
wrappers over these generators.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import TopologyError
from repro.graphs.generators.drone import drone_graph
from repro.graphs.graph import Graph
from repro.types import Edge


@dataclass(frozen=True)
class MobilitySnapshot:
    """One time step of a mobile deployment."""

    step: int
    graph: Graph
    positions: tuple[tuple[float, float], ...]


def _proximity_graph(n: int, positions, radius: float) -> Graph:
    edges: list[Edge] = []
    for u in range(n):
        ux, uy = positions[u]
        for v in range(u + 1, n):
            vx, vy = positions[v]
            if math.hypot(ux - vx, uy - vy) < radius:
                edges.append((u, v))
    return Graph(n, edges)


def random_waypoint_mission(
    n: int,
    steps: int,
    radius: float,
    arena: float = 5.0,
    speed: float = 0.5,
    seed: int = 0,
) -> Iterator[MobilitySnapshot]:
    """Random-waypoint mobility in a square arena.

    Args:
        n: number of mobile nodes.
        steps: number of time steps to generate.
        radius: communication scope (edge iff distance < radius).
        arena: side length of the square arena.
        speed: distance travelled per time step.
        seed: RNG seed; the whole trajectory is deterministic.

    Yields:
        One :class:`MobilitySnapshot` per step.

    Raises:
        TopologyError: on non-positive parameters.
    """
    if n < 2:
        raise TopologyError("a mission needs at least 2 nodes")
    if steps < 1:
        raise TopologyError("a mission needs at least one step")
    if radius <= 0 or arena <= 0 or speed <= 0:
        raise TopologyError("radius, arena and speed must be positive")
    rng = random.Random(("waypoint", n, steps, radius, arena, speed, seed).__repr__())
    positions = [
        (rng.random() * arena, rng.random() * arena) for _ in range(n)
    ]
    waypoints = [
        (rng.random() * arena, rng.random() * arena) for _ in range(n)
    ]
    for step in range(steps):
        yield MobilitySnapshot(
            step=step,
            graph=_proximity_graph(n, positions, radius),
            positions=tuple(positions),
        )
        for node in range(n):
            x, y = positions[node]
            wx, wy = waypoints[node]
            distance = math.hypot(wx - x, wy - y)
            if distance <= speed:
                positions[node] = (wx, wy)
                waypoints[node] = (rng.random() * arena, rng.random() * arena)
            else:
                positions[node] = (
                    x + speed * (wx - x) / distance,
                    y + speed * (wy - y) / distance,
                )


def drifting_scatters_mission(
    n: int,
    distances: Sequence[float],
    radius: float,
    seed: int = 0,
) -> list[Graph]:
    """The Fig. 2 storyline: two scatters at a scripted distance profile.

    Args:
        n: number of drones.
        distances: barycenter distance at each step (e.g. increasing
            for a separation mission).
        radius: communication scope.
        seed: deployment seed (one resample per step, same seed).

    Returns:
        One proximity graph per scripted distance.
    """
    if not distances:
        raise TopologyError("a mission needs at least one step")
    return [drone_graph(n, d, radius, seed=seed) for d in distances]
