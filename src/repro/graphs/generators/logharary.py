"""Logarithmic-Harary-style graphs: k-pasted-tree and k-diamond.

The paper's second topology family (Sec. V-B) comes from Baldoni et
al. [25]: *Logarithmic Harary Graphs*, k-connected graphs with (near)
minimum edge count and small diameter, "built to have interesting
properties for fault-tolerance and suit message flooding".

The exact constructions of [25] are intricate; per DESIGN.md §2 we
implement faithful stand-ins with the two properties the evaluation
relies on — vertex connectivity exactly k with ⌈kn/2⌉ edges, and a
diameter much smaller than the circulant Harary graph H_{k,n}:

* :func:`k_pasted_tree` uses binary-tree-like chords (offsets that are
  powers of two), mirroring the tree-pasting idea of the original;
* :func:`k_diamond` uses geometrically spread chords scaled to n, so
  routes expand then contract like a diamond.

Both are circulant graphs, hence vertex-transitive and k-regular; the
test suite asserts κ = k on the full experiment grid.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.graphs.generators.regular import circulant_graph
from repro.graphs.graph import Graph


def _max_offset(n: int) -> int:
    """Largest usable chord length: strictly below n / 2.

    The offset n/2 (even n) pairs each node with a single antipode and
    halves its edge contribution, which would break k-regularity.
    """
    return (n - 1) // 2


def _pad_offsets(offsets: list[int], count: int, n: int) -> list[int]:
    """Complete ``offsets`` to ``count`` distinct values in [1, (n-1)//2]."""
    chosen = sorted(set(offsets))
    candidate = 1
    while len(chosen) < count:
        if candidate > _max_offset(n):
            raise TopologyError(
                f"cannot find {count} distinct offsets in [1, {_max_offset(n)}]"
            )
        if candidate not in chosen:
            chosen.append(candidate)
            chosen.sort()
        candidate += 1
    return chosen[:count]


def _validate(k: int, n: int) -> None:
    if k < 2 or k % 2 != 0:
        raise TopologyError(f"this construction needs an even k >= 2, got {k}")
    if k >= n:
        raise TopologyError(f"need k < n, got k={k}, n={n}")
    if k // 2 > _max_offset(n):
        raise TopologyError(f"n={n} too small to host {k // 2} distinct offsets")


def k_pasted_tree(k: int, n: int) -> Graph:
    """A k-connected circulant with binary-tree-like (power-of-two) chords.

    Offsets are 1, 2, 4, ..., capped at n // 2 and padded with the
    smallest unused integers, giving diameter O(n / 2^(k/2) + k)
    instead of the Θ(n / k) of H_{k,n}.
    """
    _validate(k, n)
    wanted = k // 2
    offsets: list[int] = []
    value = 1
    while len(offsets) < wanted and value <= _max_offset(n):
        offsets.append(value)
        value *= 2
    offsets = _pad_offsets(offsets, wanted, n)
    return circulant_graph(n, offsets)


def k_diamond(k: int, n: int) -> Graph:
    """A k-connected circulant with geometrically spread chords.

    The offsets combine the unit step with geometrically spread chords
    (~n/2, n/4, n/8, ...), so that any two nodes are joined by routes
    that first take long chords and then progressively shorter ones —
    an expand/contract "diamond" pattern with diameter O(k + log n).
    """
    _validate(k, n)
    wanted = k // 2
    offsets: list[int] = [1]
    span = _max_offset(n)
    while len(offsets) < wanted and span >= 2:
        if span not in offsets:
            offsets.append(span)
        span //= 2
    offsets = _pad_offsets(offsets, wanted, n)
    return circulant_graph(n, offsets)
