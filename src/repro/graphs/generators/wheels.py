"""Generalized and multipartite wheel graphs (Sec. V-B, [23]).

Bonomi, Farina and Tixeuil use these as *worst-case* topologies for
Byzantine analysis: "Byzantine nodes might compose a clique while it
might have only one (generalized wheel) or few (multipartite wheel)
path(s) that link all correct nodes".

* :func:`generalized_wheel` GW(n, k): a clique of k - 2 *center* nodes
  plus a cycle of n - (k - 2) *rim* nodes, every rim node connected to
  every center node.  Rim degree is k, and κ(GW) = k.
* :func:`multipartite_wheel` MPW(n, k, parts): the center clique is
  split into ``parts`` groups spread around the rim; each rim node
  connects to the k - 2 members of its nearest group, keeping rim
  degree k while providing a few (rather than one) rim-only regions.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.graphs.graph import Graph
from repro.types import Edge


def generalized_wheel(n: int, k: int) -> Graph:
    """GW(n, k): center clique of size k - 2, rim cycle, full spokes.

    Nodes 0 .. k-3 are the center clique; nodes k-2 .. n-1 form the rim
    cycle.  κ = k: removing the k - 2 center nodes plus the two rim
    neighbors of any rim node isolates it, and no smaller cut exists.

    Raises:
        TopologyError: if parameters cannot host the construction.
    """
    hub = k - 2
    rim = n - hub
    if k < 3:
        raise TopologyError("generalized wheel needs k >= 3")
    if rim < 3:
        raise TopologyError(f"n={n} leaves fewer than 3 rim nodes for k={k}")
    edges: list[Edge] = []
    for i in range(hub):
        for j in range(i + 1, hub):
            edges.append((i, j))
    for r in range(rim):
        edges.append((hub + r, hub + (r + 1) % rim))
        for h in range(hub):
            edges.append((hub + r, h))
    return Graph(n, edges)


def multipartite_wheel(n: int, k: int, parts: int = 2) -> Graph:
    """MPW(n, k, parts): ``parts`` center groups spread around the rim.

    Unlike the generalized wheel's single hub, the center consists of
    ``parts`` groups of k - 2 nodes each.  Each group is a clique,
    consecutive groups (in a ring) are completely interconnected, and
    each rim node spokes into all k - 2 members of the group at its
    angular sector.  Rim degree is k; separating a rim segment needs
    its sector group plus two rim neighbors (k nodes) and separating
    the group ring needs two full groups, so κ = k while correct nodes
    in different sectors are linked by only a *few* center paths — the
    Byzantine worst case the family was designed for.

    With ``parts = 1`` this degenerates to :func:`generalized_wheel`.

    Raises:
        TopologyError: when n cannot host ``parts`` groups and a rim.
    """
    if parts < 1:
        raise TopologyError("parts must be >= 1")
    if parts == 1:
        return generalized_wheel(n, k)
    if k < 3:
        raise TopologyError("multipartite wheel needs k >= 3")
    group_size = k - 2
    hub = parts * group_size
    rim = n - hub
    if rim < parts:
        raise TopologyError(
            f"n={n} leaves fewer rim nodes ({rim}) than sectors ({parts})"
        )
    if rim < 3:
        raise TopologyError(f"n={n} leaves fewer than 3 rim nodes for k={k}")

    groups = [
        list(range(index * group_size, (index + 1) * group_size))
        for index in range(parts)
    ]
    edges: list[Edge] = []
    for group in groups:
        for i_pos, i in enumerate(group):
            for j in group[i_pos + 1:]:
                edges.append((i, j))
    for index in range(parts):
        successor = groups[(index + 1) % parts]
        if successor is groups[index]:
            continue
        for i in groups[index]:
            for j in successor:
                edges.append((i, j))
    for r in range(rim):
        node = hub + r
        edges.append((node, hub + (r + 1) % rim))
        sector = (r * parts) // rim
        for member in groups[sector]:
            edges.append((node, member))
    return Graph(n, edges)
