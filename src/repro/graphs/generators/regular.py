"""k-regular k-connected graphs (Sec. V-B, first topology family).

The paper evaluates NECTAR on "k-regular k-connected graphs [24]",
which "ensure that the graph's connectivity is exactly k (with the
minimum number of edges) and that each node has exactly k neighbors".

* :func:`harary_graph` is the deterministic classical construction
  H_{k,n} achieving exactly this optimum (Harary 1962).
* :func:`random_regular_graph` samples random k-regular graphs with
  the pairing model (in the spirit of Steger & Wormald [24]); such
  graphs are k-connected asymptotically almost surely, and the
  generator can verify and resample.
"""

from __future__ import annotations

import random

from repro.errors import TopologyError
from repro.graphs.connectivity import vertex_connectivity
from repro.graphs.graph import Graph
from repro.types import Edge


def circulant_graph(n: int, offsets) -> Graph:
    """The circulant graph C_n(offsets): i ~ i ± o (mod n) for each offset."""
    if n < 3:
        raise TopologyError("a circulant graph needs at least 3 nodes")
    edges: list[Edge] = []
    for offset in sorted(set(offsets)):
        if not 1 <= offset <= n // 2:
            raise TopologyError(f"offset {offset} outside [1, {n // 2}]")
        for i in range(n):
            edges.append((i, (i + offset) % n))
    return Graph(n, edges)


def harary_graph(k: int, n: int) -> Graph:
    """The Harary graph H_{k,n}: k-connected with ⌈kn/2⌉ edges.

    Classical three-case construction:

    * k even: circulant with offsets 1 .. k/2;
    * k odd, n even: the k-1 case plus all diameters i ~ i + n/2;
    * k odd, n odd: the k-1 case plus a near-diameter matching.

    Raises:
        TopologyError: if ``k >= n`` or ``k < 1``.
    """
    if k < 1:
        raise TopologyError("connectivity parameter k must be >= 1")
    if k >= n:
        raise TopologyError(f"H_{{k,n}} needs k < n, got k={k}, n={n}")
    if k == 1:
        # Degenerate case: a path is the 1-connected minimum graph.
        return Graph(n, [(i, i + 1) for i in range(n - 1)])

    half = k // 2
    edges: list[Edge] = []
    for offset in range(1, half + 1):
        for i in range(n):
            edges.append((i, (i + offset) % n))
    if k % 2 == 1:
        if n % 2 == 0:
            for i in range(n // 2):
                edges.append((i, i + n // 2))
        else:
            # Odd k, odd n: connect node i to i + (n - 1) / 2 ... for the
            # first half, plus the extra edge (0, (n-1)/2) companion —
            # the standard construction adds ⌈n/2⌉ near-diameters.
            for i in range(n // 2 + 1):
                edges.append((i, (i + (n - 1) // 2) % n))
    return Graph(n, edges)


def _pairing_model_sample(n: int, k: int, rng: random.Random) -> Graph | None:
    """One Steger–Wormald style draw; None when the attempt gets stuck.

    The naive configuration model rejects whole samples on any loop or
    multi-edge, which is hopeless beyond small k (acceptance decays as
    e^(-(k²-1)/4)).  Following Steger & Wormald [24] we instead match
    stubs incrementally, discarding only the *unsuitable* pairs of each
    matching wave and retrying with the leftover stubs.
    """
    edges: set[Edge] = set()
    stubs = [node for node in range(n) for _ in range(k)]
    while stubs:
        rng.shuffle(stubs)
        progress = False
        leftover: list[int] = []
        for i in range(0, len(stubs) - 1, 2):
            u, v = stubs[i], stubs[i + 1]
            edge = (u, v) if u < v else (v, u)
            if u == v or edge in edges:
                leftover.extend((u, v))
                continue
            edges.add(edge)
            progress = True
        if len(stubs) % 2 == 1:  # pragma: no cover - n*k is even
            leftover.append(stubs[-1])
        if not progress and leftover:
            return None  # stuck: every remaining pair is unsuitable
        stubs = leftover
    return Graph(n, edges)


def random_regular_graph(
    n: int,
    k: int,
    seed: int = 0,
    require_connectivity: bool = False,
    max_tries: int = 4000,
) -> Graph:
    """A uniform-ish random k-regular graph via the pairing model.

    Args:
        n: node count; ``n * k`` must be even and ``k < n``.
        k: degree.
        seed: RNG seed.
        require_connectivity: when True, resample until κ = k (random
            regular graphs are k-connected a.a.s., so this rarely loops;
            it is O(expensive) for large k and mostly useful in tests).
        max_tries: bound on resampling.

    Raises:
        TopologyError: on inconsistent parameters or when sampling
            fails to produce a valid graph within ``max_tries``.
    """
    if k < 1 or k >= n:
        raise TopologyError(f"need 1 <= k < n, got k={k}, n={n}")
    if (n * k) % 2 != 0:
        raise TopologyError(f"n*k must be even, got n={n}, k={k}")
    rng = random.Random(("random-regular", n, k, seed).__repr__())
    for _ in range(max_tries):
        graph = _pairing_model_sample(n, k, rng)
        if graph is None:
            continue
        if not graph.is_connected():
            continue
        if require_connectivity and vertex_connectivity(graph, cutoff=k) != k:
            continue
        return graph
    raise TopologyError(
        f"could not sample a k-regular graph with n={n}, k={k} "
        f"in {max_tries} tries"
    )
