"""Classic graph families used in tests, examples and illustrations.

These include the two graphs of Fig. 1 (a 2-connected ring-like graph
and a star) and the usual suspects used by the property-based tests.
"""

from __future__ import annotations

import random

from repro.errors import TopologyError
from repro.graphs.graph import Graph, complete_graph_edges


def path_graph(n: int) -> Graph:
    """The path P_n — worst case diameter, the reason R = n - 1."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """The cycle C_n (κ = 2 for n >= 3)."""
    if n < 3:
        raise TopologyError("a cycle needs at least 3 nodes")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def star_graph(n: int) -> Graph:
    """A star with node 0 at the center — Fig. 1b's 1-Byzantine-partitionable graph."""
    if n < 2:
        raise TopologyError("a star needs at least 2 nodes")
    return Graph(n, [(0, i) for i in range(1, n)])


def complete_graph(n: int) -> Graph:
    """The complete graph K_n (κ = n - 1)."""
    return Graph(n, complete_graph_edges(n))


def grid_graph(rows: int, cols: int) -> Graph:
    """A rows × cols grid (κ = 2 for non-degenerate grids)."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid dimensions must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return Graph(rows * cols, edges)


def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """A G(n, p) random graph."""
    if not 0.0 <= p <= 1.0:
        raise TopologyError(f"edge probability {p} outside [0, 1]")
    rng = random.Random(("erdos-renyi", n, p, seed).__repr__())
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < p
    ]
    return Graph(n, edges)


def random_connected_graph(n: int, p: float, seed: int = 0, max_tries: int = 200) -> Graph:
    """A connected G(n, p) sample, obtained by rejection.

    Raises:
        TopologyError: when no connected sample shows up within
            ``max_tries`` draws (p too small for n).
    """
    for attempt in range(max_tries):
        graph = erdos_renyi(n, p, seed=seed + attempt)
        if graph.is_connected():
            return graph
    raise TopologyError(
        f"no connected G({n}, {p}) sample in {max_tries} tries; increase p"
    )


def two_cliques_bridge(clique_size: int, bridges: int = 1) -> Graph:
    """Two cliques joined by ``bridges`` vertex-disjoint bridge edges.

    A handy κ = ``bridges`` testbed: the bridge endpoints on one side
    form a minimum vertex cut.
    """
    if clique_size < 2:
        raise TopologyError("cliques need at least 2 nodes")
    if not 1 <= bridges <= clique_size:
        raise TopologyError("bridges must be between 1 and the clique size")
    n = 2 * clique_size
    edges = []
    for base in (0, clique_size):
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
    for b in range(bridges):
        edges.append((b, clique_size + b))
    return Graph(n, edges)
