"""Topology generators for every family in the paper's evaluation."""

from repro.graphs.generators.classic import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    random_connected_graph,
    star_graph,
    two_cliques_bridge,
)
from repro.graphs.generators.drone import (
    CLUSTER_RADIUS,
    DroneDeployment,
    drone_deployment,
    drone_graph,
)
from repro.graphs.generators.logharary import k_diamond, k_pasted_tree
from repro.graphs.generators.mobility import (
    MobilitySnapshot,
    drifting_scatters_mission,
    random_waypoint_mission,
)
from repro.graphs.generators.regular import (
    circulant_graph,
    harary_graph,
    random_regular_graph,
)
from repro.graphs.generators.wheels import generalized_wheel, multipartite_wheel

__all__ = [
    "complete_graph",
    "cycle_graph",
    "erdos_renyi",
    "grid_graph",
    "path_graph",
    "random_connected_graph",
    "star_graph",
    "two_cliques_bridge",
    "CLUSTER_RADIUS",
    "DroneDeployment",
    "drone_deployment",
    "drone_graph",
    "k_diamond",
    "k_pasted_tree",
    "MobilitySnapshot",
    "drifting_scatters_mission",
    "random_waypoint_mission",
    "circulant_graph",
    "harary_graph",
    "random_regular_graph",
    "generalized_wheel",
    "multipartite_wheel",
]
