"""Undirected communication graphs (Sec. II).

:class:`Graph` is a small immutable adjacency-set structure.  It is
deliberately independent of networkx: the reproduction implements its
own graph algorithms (connectivity, reachability, diameter) and uses
networkx only as a test oracle.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator

from repro.errors import GraphError
from repro.types import Edge, NodeId, canonical_edge, validate_node_ids


class Graph:
    """An immutable undirected graph over nodes ``0 .. n-1``.

    Args:
        n: number of nodes (nodes are the ids ``0 .. n-1``).
        edges: iterable of (u, v) pairs; order and duplicates are
            normalised away.

    Raises:
        GraphError: on out-of-range endpoints or self loops.
    """

    __slots__ = ("_n", "_adjacency", "_edges", "_digest", "_dense")

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n < 1:
            raise GraphError("a graph needs at least one node")
        validate_node_ids([n - 1])
        adjacency: list[set[NodeId]] = [set() for _ in range(n)]
        edge_set: set[Edge] = set()
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) outside node range [0, {n})")
            try:
                edge = canonical_edge(u, v)
            except ValueError as exc:
                raise GraphError(str(exc)) from exc
            if edge in edge_set:
                continue
            edge_set.add(edge)
            adjacency[u].add(v)
            adjacency[v].add(u)
        self._n = n
        self._adjacency = tuple(frozenset(neighbors) for neighbors in adjacency)
        self._edges = frozenset(edge_set)
        self._digest: str | None = None
        self._dense: object | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return len(self._edges)

    def nodes(self) -> range:
        """All node ids."""
        return range(self._n)

    def edges(self) -> frozenset[Edge]:
        """All edges in canonical form."""
        return self._edges

    def neighbors(self, node: NodeId) -> frozenset[NodeId]:
        """The neighborhood Γ(node)."""
        if not 0 <= node < self._n:
            raise GraphError(f"node {node} outside range [0, {self._n})")
        return self._adjacency[node]

    def degree(self, node: NodeId) -> int:
        """|Γ(node)|."""
        return len(self.neighbors(node))

    def min_degree(self) -> int:
        """The minimum degree over all nodes."""
        return min(len(neighbors) for neighbors in self._adjacency)

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether (u, v) is a channel of the graph."""
        if u == v:
            return False
        if not (0 <= u < self._n and 0 <= v < self._n):
            return False
        return v in self._adjacency[u]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._n, self._edges))

    def digest(self) -> str:
        """A stable content digest of ``(n, sorted edges)``.

        Two graphs share a digest iff they are equal, independently of
        construction order or process — which makes the digest usable
        as a content address across worker processes and on disk (the
        artifact layer keys connectivity certificates by it).  Computed
        lazily and memoised; the graph is immutable so the digest never
        goes stale.
        """
        if self._digest is None:
            hasher = hashlib.sha256(f"graph|{self._n}|".encode())
            for u, v in sorted(self._edges):
                hasher.update(f"{u},{v};".encode())
            self._digest = hasher.hexdigest()
        return self._digest

    def dense_adjacency(self, builder) -> object:
        """Memoised dense adjacency matrix for the vectorized kernels.

        ``builder`` is called with the graph on the first use and its
        result cached next to :meth:`digest` (the graph is immutable,
        so the matrix never goes stale).  The builder lives in
        :mod:`repro.perf.kernels` — keeping this class free of any
        numpy import so the pure-Python fallback never pays for it.
        """
        if self._dense is None:
            self._dense = builder(self)
        return self._dense

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> tuple:
        # The dense-matrix cache is deliberately dropped: pickled
        # graphs travel between sweep workers and environments that
        # may not share the optional numpy dependency.
        return (self._n, sorted(self._edges), self._digest)

    def __setstate__(self, state: tuple) -> None:
        n, edges, digest = state
        self.__init__(n, edges)
        self._digest = digest

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self._n}, edges={self.edge_count})"

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def without_nodes(self, removed: Iterable[NodeId]) -> "Graph":
        """The subgraph induced by removing ``removed``.

        Node ids are preserved: removed nodes become isolated and are
        excluded from every edge.  Keeping ids stable (instead of
        compacting them) matches how the paper reasons about the
        "subgraph of correct nodes" while nodes keep their identity.
        """
        removed_set = set(removed)
        kept_edges = [
            edge for edge in self._edges
            if edge[0] not in removed_set and edge[1] not in removed_set
        ]
        return Graph(self._n, kept_edges)

    def induced(self, kept: Iterable[NodeId]) -> "Graph":
        """The subgraph induced by keeping only ``kept`` nodes."""
        kept_set = set(kept)
        return self.without_nodes(set(self.nodes()) - kept_set)

    def with_edges(self, extra: Iterable[Edge]) -> "Graph":
        """A new graph with additional edges."""
        return Graph(self._n, list(self._edges) + list(extra))

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def bfs_reachable(
        self, source: NodeId, forbidden: frozenset[NodeId] = frozenset()
    ) -> set[NodeId]:
        """Nodes reachable from ``source`` avoiding ``forbidden`` nodes.

        ``source`` itself is included (unless it is forbidden, in which
        case the result is empty).
        """
        if source in forbidden:
            return set()
        seen = {source}
        frontier = [source]
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in self._adjacency[node]:
                    if neighbor in seen or neighbor in forbidden:
                        continue
                    seen.add(neighbor)
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return seen

    def connected_components(self) -> list[set[NodeId]]:
        """All connected components, as sets of node ids."""
        remaining = set(self.nodes())
        components = []
        while remaining:
            source = next(iter(remaining))
            component = self.bfs_reachable(source)
            components.append(component)
            remaining -= component
        return components

    def is_connected(self) -> bool:
        """Whether the whole graph is one component."""
        return len(self.bfs_reachable(0)) == self._n

    def bfs_distances(self, source: NodeId) -> dict[NodeId, int]:
        """Hop distances from ``source`` to every reachable node."""
        distances = {source: 0}
        frontier = [source]
        depth = 0
        while frontier:
            depth += 1
            next_frontier = []
            for node in frontier:
                for neighbor in self._adjacency[node]:
                    if neighbor not in distances:
                        distances[neighbor] = depth
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return distances

    def iter_adjacency(self) -> Iterator[tuple[NodeId, frozenset[NodeId]]]:
        """Yield (node, neighborhood) pairs."""
        for node in self.nodes():
            yield node, self._adjacency[node]


def graph_from_adjacency(adjacency: dict[NodeId, Iterable[NodeId]], n: int) -> Graph:
    """Build a :class:`Graph` from an adjacency mapping."""
    edges = []
    for node, neighbors in adjacency.items():
        for neighbor in neighbors:
            edges.append((node, neighbor))
    return Graph(n, edges)


def complete_graph_edges(n: int) -> list[Edge]:
    """All edges of the complete graph K_n."""
    return [(u, v) for u in range(n) for v in range(u + 1, n)]
