"""Vertex connectivity (κ) and local connectivity κ(s, t).

The whole paper revolves around vertex connectivity: a graph is
t-Byzantine partitionable iff κ(G) <= t (Corollary 1), and NECTAR's
decision phase computes κ of the discovered graph (Algorithm 1 l. 17).

We implement the classical algorithm used for exact node connectivity:

* κ(s, t) for non-adjacent s, t is the max flow in the vertex-split
  digraph (Menger's theorem [20]);
* κ(G) = min over a quadratic-free pair family built from a minimum
  degree vertex v: pairs (v, w) for w non-adjacent to v, plus pairs of
  non-adjacent neighbors of v.  Every minimum cut either excludes v
  (first family) or contains v, in which case v has neighbors in two
  components of G - C (second family).

A ``cutoff`` argument allows early exit: callers that only need to
compare κ against a threshold (NECTAR compares against t and the
sensitivity bound 2t) can cap every max-flow at the threshold.
"""

from __future__ import annotations

from repro import perf
from repro.graphs.graph import Graph
from repro.graphs.maxflow import INFINITY, FlowNetwork
from repro.types import NodeId


def _split_network(graph: Graph, source: NodeId, sink: NodeId) -> FlowNetwork:
    """Build the vertex-split digraph for a κ(source, sink) query.

    Vertex v becomes v_in = 2v and v_out = 2v + 1 with an internal arc
    of capacity 1 (capacity INFINITY for the terminals, which may not
    be counted in a separator).  Each undirected edge (u, v) becomes
    u_out -> v_in and v_out -> u_in with infinite capacity.
    """
    network = FlowNetwork(2 * graph.n)
    for vertex in graph.nodes():
        capacity = INFINITY if vertex in (source, sink) else 1
        network.add_edge(2 * vertex, 2 * vertex + 1, capacity)
    for u, v in graph.edges():
        network.add_edge(2 * u + 1, 2 * v, INFINITY)
        network.add_edge(2 * v + 1, 2 * u, INFINITY)
    return network


def local_connectivity(
    graph: Graph, source: NodeId, sink: NodeId, cutoff: int | None = None
) -> int:
    """κ(source, sink): the number of vertex-independent paths.

    For adjacent vertices no vertex set separates them; following the
    usual convention this returns ``INFINITY`` (truncated at ``cutoff``
    when one is given).

    Raises:
        ValueError: if ``source == sink``.
    """
    if source == sink:
        raise ValueError("local connectivity needs two distinct vertices")
    if graph.has_edge(source, sink):
        return INFINITY if cutoff is None else cutoff
    network = _split_network(graph, source, sink)
    return network.max_flow(2 * source + 1, 2 * sink, cutoff=cutoff)


def vertex_connectivity(graph: Graph, cutoff: int | None = None) -> int:
    """Global vertex connectivity κ(G).

    Args:
        graph: the graph to analyse.
        cutoff: when given, the computation may stop early and return
            ``min(κ(G), cutoff)``; useful when the caller only needs to
            know whether κ reaches a threshold.

    Returns:
        κ(G) exactly, or its truncation at ``cutoff``.  A disconnected
        graph (including any graph with an isolated vertex) has κ = 0;
        the complete graph K_n has κ = n - 1 by convention.
    """
    if perf.kernels_enabled():
        from repro.perf import kernels

        result = kernels.vertex_connectivity_kernel(graph, cutoff=cutoff)
        if result is not None:
            return result
    n = graph.n
    if n == 1:
        return 0 if cutoff is None else min(0, cutoff)
    if not graph.is_connected():
        return 0
    if cutoff is not None and cutoff <= 1:
        # Connected ⇒ κ >= 1, so the truncation is already decided
        # without any max-flow work (the cost sweeps run cutoff=1).
        return max(0, cutoff)
    if graph.edge_count == n * (n - 1) // 2:
        kappa = n - 1
        return kappa if cutoff is None else min(kappa, cutoff)

    # The minimum degree bounds κ from above, the user cutoff may bound
    # it further.
    best = graph.min_degree()
    if cutoff is not None:
        best = min(best, cutoff)
    if best == 0:
        return 0

    pivot = min(graph.nodes(), key=graph.degree)
    pivot_neighbors = sorted(graph.neighbors(pivot))

    # Family 1: pivot against every non-neighbor.
    for other in graph.nodes():
        if other == pivot or other in graph.neighbors(pivot):
            continue
        flow = local_connectivity(graph, pivot, other, cutoff=best)
        if flow < best:
            best = flow
            if best == 0:
                return 0

    # Family 2: non-adjacent pairs of pivot's neighbors (covers minimum
    # cuts that contain the pivot itself).
    for i, x in enumerate(pivot_neighbors):
        for y in pivot_neighbors[i + 1:]:
            if graph.has_edge(x, y):
                continue
            flow = local_connectivity(graph, x, y, cutoff=best)
            if flow < best:
                best = flow
                if best == 0:
                    return 0
    return best


def minimum_st_vertex_cut(graph: Graph, source: NodeId, sink: NodeId) -> set[NodeId]:
    """A minimum vertex set separating two non-adjacent vertices.

    By Menger's theorem its size equals κ(source, sink).  The cut is
    read off the saturated internal arcs on the residual boundary of a
    maximum flow.

    Raises:
        ValueError: for adjacent (or identical) vertices, which no
            vertex set separates.
    """
    if source == sink or graph.has_edge(source, sink):
        raise ValueError("a vertex cut needs two distinct non-adjacent vertices")
    network = _split_network(graph, source, sink)
    network.max_flow(2 * source + 1, 2 * sink)
    reachable = network.residual_reachable(2 * source + 1)
    cut = set()
    for vertex in graph.nodes():
        if vertex in (source, sink):
            continue
        if 2 * vertex in reachable and 2 * vertex + 1 not in reachable:
            cut.add(vertex)
    return cut


def minimum_vertex_cut(graph: Graph) -> set[NodeId]:
    """A minimum vertex cut of a connected, non-complete graph.

    Useful to place Byzantine nodes in the worst position the paper
    reasons about: |cut| = κ(G) nodes whose removal partitions the
    correct remainder.

    Raises:
        ValueError: for disconnected or complete graphs (no vertex cut
            exists in either case).
    """
    n = graph.n
    if not graph.is_connected():
        raise ValueError("a disconnected graph has no minimum vertex cut")
    if graph.edge_count == n * (n - 1) // 2:
        raise ValueError("a complete graph has no vertex cut")
    best_cut: set[NodeId] | None = None
    pivot = min(graph.nodes(), key=graph.degree)
    pivot_neighbors = sorted(graph.neighbors(pivot))
    candidate_pairs = [
        (pivot, other)
        for other in graph.nodes()
        if other != pivot and other not in graph.neighbors(pivot)
    ]
    candidate_pairs.extend(
        (x, y)
        for i, x in enumerate(pivot_neighbors)
        for y in pivot_neighbors[i + 1:]
        if not graph.has_edge(x, y)
    )
    for s, t in candidate_pairs:
        cut = minimum_st_vertex_cut(graph, s, t)
        if best_cut is None or len(cut) < len(best_cut):
            best_cut = cut
            if len(best_cut) == 0:
                break
    if best_cut is None:  # pragma: no cover - excluded by the guards above
        raise ValueError("no separable pair found")
    return best_cut


def is_vertex_cut(graph: Graph, nodes: frozenset[NodeId] | set[NodeId]) -> bool:
    """Whether removing ``nodes`` disconnects the remaining vertices.

    This is the Safety condition of Def. 3 ("if V_b is a vertex cut of
    G ...").  Removing everything (or all but one vertex) is not a cut.
    """
    remaining = [v for v in graph.nodes() if v not in nodes]
    if len(remaining) <= 1:
        return False
    stripped = graph.without_nodes(nodes)
    reachable = stripped.bfs_reachable(remaining[0], forbidden=frozenset(nodes))
    return len(reachable) != len(remaining)


def is_byzantine_partitionable(graph: Graph, t: int) -> bool:
    """Corollary 1: G is t-Byzantine partitionable iff κ(G) <= t."""
    if t < 0:
        raise ValueError("t must be non-negative")
    if t == 0:
        return not graph.is_connected()
    return vertex_connectivity(graph, cutoff=t + 1) <= t
