"""Shared vocabulary for the NECTAR reproduction.

The paper (Sec. II) works with a set of ``n`` processes identified by
unique IDs, connected by a static undirected graph, with up to ``t``
Byzantine processes.  This module defines the small, dependency-free
types that every other subpackage builds on: node identifiers, edges,
the two-valued decision of a partition detection algorithm (Sec. III-D)
and the verdict record a node produces at the end of a run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

# A node is identified by a small non-negative integer, as in the paper
# where processes are p_1 .. p_n.  Using plain ints keeps the simulator
# fast and the wire encoding compact (two bytes per ID, see net.codec).
NodeId = int

#: Maximum node id representable on the wire (two bytes, see net.codec).
MAX_NODE_ID = 0xFFFF


def canonical_edge(u: NodeId, v: NodeId) -> tuple[NodeId, NodeId]:
    """Return the canonical (sorted) form of an undirected edge.

    The communication graph is undirected (Sec. II), so ``(u, v)`` and
    ``(v, u)`` denote the same channel.  All bookkeeping structures key
    edges by their canonical form to avoid double counting.

    Raises:
        ValueError: if ``u == v`` (self loops are not channels).
    """
    if u == v:
        raise ValueError(f"self loop ({u}, {v}) is not a communication channel")
    if u < v:
        return (u, v)
    return (v, u)


Edge = tuple[NodeId, NodeId]


class Decision(enum.Enum):
    """The two outcomes of Byzantine partition detection (Sec. III-C).

    ``NOT_PARTITIONABLE``
        No placement of the ``t`` Byzantine nodes can disconnect the
        correct nodes.

    ``PARTITIONABLE``
        Byzantine nodes *might* be able to disconnect correct nodes
        (this is not certain: correct nodes cannot distinguish a low
        connectivity from Byzantine nodes hiding edges).
    """

    NOT_PARTITIONABLE = "NOT_PARTITIONABLE"
    PARTITIONABLE = "PARTITIONABLE"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Verdict:
    """What a node reports after its one-shot ``decide()`` call.

    Attributes:
        decision: one of the two :class:`Decision` values.
        confirmed: the additional Boolean output of NECTAR (Sec. III-D,
            Validity): ``True`` means the node detected an *actual*
            partition, i.e. some nodes were unreachable in its view and
            the Byzantine nodes effectively form a vertex cut.
        reachable: the number of nodes the deciding node saw as
            reachable (``r`` in Algorithm 1).
        connectivity: the vertex connectivity the node computed on its
            discovered graph (``k`` in Algorithm 1), or ``None`` when
            the protocol did not need to compute it (baselines, or
            unreachable nodes short-circuit).
    """

    decision: Decision
    confirmed: bool
    reachable: int
    connectivity: int | None = None

    @property
    def partition_suspected(self) -> bool:
        """True when the verdict reports any form of partition danger."""
        return self.decision is Decision.PARTITIONABLE


class BaselineDecision(enum.Enum):
    """Outcome vocabulary of the non-Byzantine baselines (MtG, MtGv2).

    The baselines of Sec. V-A answer the *classic* partition detection
    question — is the network currently partitioned? — rather than the
    Byzantine-partitionability question.
    """

    CONNECTED = "CONNECTED"
    PARTITIONED = "PARTITIONED"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class GroundTruth:
    """Reference facts about a run, computed from the real topology.

    Built by the experiment layer from the *actual* graph and the
    *actual* Byzantine placement, which no node knows (Sec. II).

    Attributes:
        n: total number of nodes.
        t: declared maximum number of Byzantine nodes.
        byzantine: the actual set of Byzantine node ids.
        connectivity: vertex connectivity ``k`` of the full graph G.
        graph_partitioned: whether G itself is disconnected (Def. 1).
        correct_subgraph_partitioned: whether the subgraph induced by
            the correct nodes is disconnected (the condition of Lemma 3
            and of the Safety property).
        byzantine_partitionable: whether G is t-Byzantine partitionable,
            i.e. ``connectivity <= t`` (Corollary 1).
    """

    n: int
    t: int
    byzantine: frozenset[NodeId]
    connectivity: int
    graph_partitioned: bool
    correct_subgraph_partitioned: bool
    byzantine_partitionable: bool

    @property
    def correct_nodes(self) -> frozenset[NodeId]:
        """Ids of the correct (non-Byzantine) nodes."""
        return frozenset(range(self.n)) - self.byzantine


def validate_node_ids(ids: Iterable[NodeId]) -> None:
    """Check that every id fits the wire format and is non-negative.

    Raises:
        ValueError: on a negative or oversized id.
    """
    for node_id in ids:
        if not 0 <= node_id <= MAX_NODE_ID:
            raise ValueError(
                f"node id {node_id} outside the representable range "
                f"[0, {MAX_NODE_ID}]"
            )
