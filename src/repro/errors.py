"""Exception hierarchy of the reproduction.

Every error raised on purpose by the library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all library-specific errors."""


class CryptoError(ReproError):
    """Base class of signature-layer errors."""


class UnknownKeyError(CryptoError):
    """A signer or verifier referenced a node id with no registered key."""


class SignatureError(CryptoError):
    """A signature failed verification."""


class ForgeryError(CryptoError):
    """An adversary attempted an operation the crypto layer forbids.

    Raised when Byzantine code tries to sign on behalf of another node,
    which models the unforgeability assumption of Sec. II ("Byzantine
    nodes cannot forge signatures").
    """


class GraphError(ReproError):
    """Base class of graph-layer errors."""


class TopologyError(GraphError):
    """A topology generator received inconsistent parameters."""


class NetworkError(ReproError):
    """Base class of network-layer errors."""


class ChannelError(NetworkError):
    """A node tried to use a channel that does not exist in G.

    The model only allows direct communication along edges of G
    (Sec. II); even Byzantine nodes cannot create new channels.
    """


class CodecError(NetworkError):
    """A message could not be encoded, or received bytes failed to parse.

    On the receive path a :class:`CodecError` is the normal fate of
    garbage injected by Byzantine nodes; callers drop the message.
    """


class ProtocolError(ReproError):
    """A protocol was driven outside its legal lifecycle."""


class ExperimentError(ReproError):
    """An experiment configuration is inconsistent."""
