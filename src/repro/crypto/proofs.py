"""Proofs of neighborhood (Sec. II).

A proof of neighborhood ``proof_{i,j}`` is a cryptographic object used
by node ``i`` to declare an edge with node ``j``; it cannot be forged
as soon as either ``i`` or ``j`` is correct.  We realise it as the
canonical edge encoding co-signed by *both* endpoints:

* a single Byzantine node cannot fabricate a proof naming a correct
  node, because it lacks that node's private key;
* two colluding Byzantine nodes *can* fabricate a proof for a
  fictitious edge between themselves — explicitly allowed by the model
  and harmless for NECTAR (Sec. IV, "Impact of Byzantine deviations").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.signer import KeyPair, PublicDirectory, SignatureScheme
from repro.types import Edge, NodeId, canonical_edge

_PROOF_DOMAIN = b"repro-neighborhood-proof|"


def proof_message(u: NodeId, v: NodeId) -> bytes:
    """Canonical byte string both endpoints sign to attest edge (u, v)."""
    lo, hi = canonical_edge(u, v)
    return _PROOF_DOMAIN + lo.to_bytes(2, "big") + hi.to_bytes(2, "big")


@dataclass(frozen=True)
class NeighborhoodProof:
    """An edge attested by both of its endpoints.

    Attributes:
        edge: the canonical (lo, hi) edge.
        signature_lo: signature of the lower-id endpoint over
            :func:`proof_message`.
        signature_hi: signature of the higher-id endpoint.
    """

    edge: Edge
    signature_lo: bytes
    signature_hi: bytes

    @property
    def lo(self) -> NodeId:
        return self.edge[0]

    @property
    def hi(self) -> NodeId:
        return self.edge[1]

    def endpoints(self) -> frozenset[NodeId]:
        """The two endpoints as a set."""
        return frozenset(self.edge)


def make_proof(
    scheme: SignatureScheme, key_u: KeyPair, key_v: KeyPair
) -> NeighborhoodProof:
    """Build the neighborhood proof for the edge between two key owners.

    Used by the setup harness for every real edge of G, and by
    colluding Byzantine pairs for fictitious edges (both cases hold the
    two private keys, which is exactly the forgeability boundary of the
    model).
    """
    lo, hi = canonical_edge(key_u.node_id, key_v.node_id)
    message = proof_message(lo, hi)
    by_id = {key_u.node_id: key_u, key_v.node_id: key_v}
    return NeighborhoodProof(
        edge=(lo, hi),
        signature_lo=scheme.sign(by_id[lo], message),
        signature_hi=scheme.sign(by_id[hi], message),
    )


def verify_proof(
    scheme: SignatureScheme, directory: PublicDirectory, proof: NeighborhoodProof
) -> bool:
    """Check both endpoint signatures of a proof.

    Returns ``False`` (rather than raising) on any problem: invalid
    proofs are ordinary adversarial input and are simply dropped.
    """
    lo, hi = proof.edge
    if lo == hi:
        return False
    if lo not in directory or hi not in directory:
        return False
    message = proof_message(lo, hi)
    if not scheme.verify(directory.public_key_of(lo), message, proof.signature_lo):
        return False
    return scheme.verify(directory.public_key_of(hi), message, proof.signature_hi)


def proof_bytes(proof: NeighborhoodProof) -> bytes:
    """Deterministic encoding of a proof, used as chain payload.

    Memoized on the proof object: the same (immutable) proof is
    encoded once per relay and once per verification along every path
    its announcement travels, always to the same bytes.
    """
    cached = getattr(proof, "_payload_cache", None)
    if cached is None:
        lo, hi = proof.edge
        cached = (
            lo.to_bytes(2, "big")
            + hi.to_bytes(2, "big")
            + proof.signature_lo
            + proof.signature_hi
        )
        object.__setattr__(proof, "_payload_cache", cached)
    return cached
