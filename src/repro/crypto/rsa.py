"""Pure-Python RSA signatures (full-domain hash).

A genuinely asymmetric :class:`repro.crypto.signer.SignatureScheme`
implementation, provided to demonstrate that no part of the protocol
stack relies on the HMAC oracle trick of the default scheme.  Key
generation uses Miller–Rabin primality testing seeded from the
experiment RNG, so runs remain reproducible.

This is *textbook* RSA-FDH: fine for a simulation of an unforgeable
signature primitive, not for production cryptography.
"""

from __future__ import annotations

import hashlib

from repro.crypto.signer import KeyPair, SignatureScheme
from repro.types import NodeId

# Small primes used to cheaply reject most composite candidates before
# running Miller-Rabin.
_SMALL_PRIMES = (
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
)

_MILLER_RABIN_ROUNDS = 40


def is_probable_prime(candidate: int, rng) -> bool:
    """Miller–Rabin primality test with random bases drawn from ``rng``."""
    if candidate < 2:
        return False
    if candidate in (2, 3):
        return True
    if candidate % 2 == 0:
        return False
    for small in _SMALL_PRIMES:
        if candidate == small:
            return True
        if candidate % small == 0:
            return False
    # Write candidate - 1 as odd_part * 2**two_exponent.
    odd_part = candidate - 1
    two_exponent = 0
    while odd_part % 2 == 0:
        odd_part //= 2
        two_exponent += 1
    for _ in range(_MILLER_RABIN_ROUNDS):
        base = rng.randrange(2, candidate - 1)
        x = pow(base, odd_part, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(two_exponent - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng) -> int:
    """Generate a random probable prime of exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size below 8 bits is not supported")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force size and oddness
        if is_probable_prime(candidate, rng):
            return candidate


def _modular_inverse(a: int, modulus: int) -> int:
    """Return a^-1 mod modulus via the extended Euclidean algorithm."""
    old_r, r = a, modulus
    old_s, s = 1, 0
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
    if old_r != 1:
        raise ValueError("inverse does not exist")
    return old_s % modulus


def _full_domain_hash(data: bytes, modulus: int) -> int:
    """Hash ``data`` to an integer in [0, modulus) using SHA-256 in counter mode."""
    target_bytes = (modulus.bit_length() + 7) // 8 + 8
    digest = b""
    counter = 0
    while len(digest) < target_bytes:
        digest += hashlib.sha256(counter.to_bytes(4, "big") + data).digest()
        counter += 1
    return int.from_bytes(digest[:target_bytes], "big") % modulus


class RsaScheme(SignatureScheme):
    """RSA-FDH signatures with ``bits``-bit moduli.

    Private key wire format: ``modulus || private_exponent || p || q``
    (each as a fixed-width big-endian integer; a legacy two-field key
    without the primes still signs, via the plain exponentiation).
    Public key: ``modulus`` alone (the public exponent is the constant
    65537).

    Signing uses the standard CRT shortcut when the primes are
    available — two half-size exponentiations instead of one full-size
    one, ~3-4× faster — and memoises the per-key CRT parameters, so
    the protocol simulations that sign thousands of chain links per
    trial pay the derivation once per key.  The produced signature is
    bit-identical to the textbook ``m^d mod n`` (CRT reconstructs the
    same residue), so cached/uncached and CRT/legacy runs agree.

    Args:
        bits: modulus size.  512 is the default; 256 is enough for
            tests and much faster to generate.
    """

    PUBLIC_EXPONENT = 65537

    def __init__(self, bits: int = 512) -> None:
        if bits < 128:
            raise ValueError("modulus below 128 bits cannot host SHA-256 FDH safely")
        self.bits = bits
        self.signature_size = (bits + 7) // 8
        # private_key bytes -> (modulus, p, q, d mod p-1, d mod q-1,
        # q^-1 mod p); at most one entry per deployment key.
        self._crt_params: dict[bytes, tuple[int, int, int, int, int, int]] = {}

    def generate_keypair(self, node_id: NodeId, rng) -> KeyPair:
        half = self.bits // 2
        while True:
            p = generate_prime(half, rng)
            q = generate_prime(self.bits - half, rng)
            if p == q:
                continue
            modulus = p * q
            phi = (p - 1) * (q - 1)
            if phi % self.PUBLIC_EXPONENT == 0:
                continue
            private_exponent = _modular_inverse(self.PUBLIC_EXPONENT, phi)
            break
        width = self.signature_size
        private = (
            modulus.to_bytes(width, "big")
            + private_exponent.to_bytes(width, "big")
            + p.to_bytes(width, "big")
            + q.to_bytes(width, "big")
        )
        public = modulus.to_bytes(width, "big")
        return KeyPair(node_id=node_id, private_key=private, public_key=public)

    def sign(self, key_pair: KeyPair, data: bytes) -> bytes:
        width = self.signature_size
        private = key_pair.private_key
        modulus = int.from_bytes(private[:width], "big")
        digest = _full_domain_hash(data, modulus)
        if len(private) < 4 * width:  # legacy key without CRT primes
            private_exponent = int.from_bytes(private[width : 2 * width], "big")
            signature = pow(digest, private_exponent, modulus)
            return signature.to_bytes(width, "big")
        params = self._crt_params.get(private)
        if params is None:
            private_exponent = int.from_bytes(private[width : 2 * width], "big")
            p = int.from_bytes(private[2 * width : 3 * width], "big")
            q = int.from_bytes(private[3 * width : 4 * width], "big")
            params = (
                modulus,
                p,
                q,
                private_exponent % (p - 1),
                private_exponent % (q - 1),
                _modular_inverse(q % p, p),
            )
            self._crt_params[private] = params
        modulus, p, q, exp_p, exp_q, q_inverse = params
        residue_p = pow(digest % p, exp_p, p)
        residue_q = pow(digest % q, exp_q, q)
        # Garner recombination: the unique residue mod p*q.
        signature = residue_q + q * ((q_inverse * (residue_p - residue_q)) % p)
        return signature.to_bytes(width, "big")

    def verify(self, public_key: bytes, data: bytes, signature: bytes) -> bool:
        if len(signature) != self.signature_size:
            return False
        if len(public_key) != self.signature_size:
            return False
        modulus = int.from_bytes(public_key, "big")
        if modulus == 0:
            return False
        value = int.from_bytes(signature, "big")
        if value >= modulus:
            return False
        recovered = pow(value, self.PUBLIC_EXPONENT, modulus)
        return recovered == _full_domain_hash(data, modulus)
