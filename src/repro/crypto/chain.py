"""Chained signatures (Sec. II and Algorithm 1).

NECTAR relays edge announcements inside *signature chains*
``σ_k(σ_x(... σ_u(proof_{u,v})))``: each relaying node appends its own
signature over the payload plus the chain so far.  The chain length
must equal the round number (Algorithm 1, l. 14), which bounds the
damage Byzantine relays can do and underpins the Dolev–Strong style
argument of Lemma 2.

A chain is a tuple of :class:`ChainLink`; link ``i`` signs the domain-
separated concatenation of the payload and links ``0 .. i-1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.signer import KeyPair, PublicDirectory, SignatureScheme
from repro.types import NodeId

_CHAIN_DOMAIN = b"repro-signature-chain|"


@dataclass(frozen=True)
class ChainLink:
    """One layer of a signature chain.

    Attributes:
        signer: id of the node that produced this layer.
        signature: its signature over the payload and all inner layers.
    """

    signer: NodeId
    signature: bytes


def chain_message(payload: bytes, inner_links: tuple[ChainLink, ...]) -> bytes:
    """The byte string signed by the link that follows ``inner_links``."""
    parts = [_CHAIN_DOMAIN, len(payload).to_bytes(4, "big"), payload]
    for link in inner_links:
        parts.append(link.signer.to_bytes(2, "big"))
        parts.append(link.signature)
    return b"".join(parts)


def extend_chain(
    scheme: SignatureScheme,
    key_pair: KeyPair,
    payload: bytes,
    links: tuple[ChainLink, ...],
) -> tuple[ChainLink, ...]:
    """Append the caller's signature layer and return the new chain.

    ``links`` may be empty, in which case this creates the innermost
    layer (what the originator sends in round 1).
    """
    signature = scheme.sign(key_pair, chain_message(payload, links))
    return links + (ChainLink(signer=key_pair.node_id, signature=signature),)


def verify_chain(
    scheme: SignatureScheme,
    directory: PublicDirectory,
    payload: bytes,
    links: tuple[ChainLink, ...],
) -> bool:
    """Check every layer of a signature chain.

    Returns ``False`` on any malformed or invalid layer; adversarial
    chains are dropped silently by callers.
    """
    if not links:
        return False
    for index, link in enumerate(links):
        if link.signer not in directory:
            return False
        message = chain_message(payload, links[:index])
        public = directory.public_key_of(link.signer)
        if not scheme.verify(public, message, link.signature):
            return False
    return True


def chain_signers(links: tuple[ChainLink, ...]) -> tuple[NodeId, ...]:
    """The signer ids of a chain, innermost first."""
    return tuple(link.signer for link in links)
