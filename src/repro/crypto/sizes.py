"""Wire-size profiles for network-cost accounting.

The paper measures "data sent per node" in KB (Figs. 3-7).  The
absolute value depends on the encoding of ids, signatures and message
headers.  We centralise those constants in a :class:`WireProfile` so
experiments can account costs under a realistic ECDSA-sized profile
(the paper uses ECDSA, Sec. V-B) or a compact profile, and so the
ablation bench (DESIGN.md §5.4) can compare them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WireProfile:
    """Byte sizes of the primitive wire elements.

    Attributes:
        name: human-readable profile name.
        node_id_bytes: encoding size of a :data:`repro.types.NodeId`.
        signature_bytes: encoding size of one signature.
        envelope_header_bytes: fixed per-message overhead (type tag,
            round number, sender, length field); must be at least the
            9 bytes the binary codec actually writes (tag 1 + sender 2
            + round 2 + length 4) — the codec pads up to this size.
        epoch_header_bytes: fixed per-gossip-message overhead for the
            baselines (epoch counter, sender, length field).
    """

    name: str
    node_id_bytes: int = 2
    signature_bytes: int = 64
    envelope_header_bytes: int = 9
    epoch_header_bytes: int = 6

    @property
    def edge_bytes(self) -> int:
        """Size of a bare undirected edge (two node ids)."""
        return 2 * self.node_id_bytes

    def __post_init__(self) -> None:
        if self.signature_bytes < 0 or self.node_id_bytes < 1:
            raise ValueError("profile sizes must be non-negative")

    @property
    def proof_bytes(self) -> int:
        """Size of a neighborhood proof: an edge co-signed by both ends."""
        return self.edge_bytes + 2 * self.signature_bytes

    @property
    def chain_link_bytes(self) -> int:
        """Size of one signature-chain link: signer id + signature."""
        return self.node_id_bytes + self.signature_bytes

    def announcement_bytes(self, chain_length: int) -> int:
        """Size of one edge announcement with ``chain_length`` links."""
        if chain_length < 1:
            raise ValueError("a relayed announcement carries >= 1 link")
        return self.proof_bytes + chain_length * self.chain_link_bytes

    def signed_id_bytes(self) -> int:
        """Size of one signed process id (MtGv2 gossip unit)."""
        return self.node_id_bytes + self.signature_bytes


#: Realistic profile: 64-byte signatures, matching ECDSA-P256 raw
#: signatures used by the paper's prototype.
ECDSA_PROFILE = WireProfile(name="ecdsa")

#: Compact profile: 32-byte signatures (e.g. truncated tags); used by
#: the ablation on signature size.
COMPACT_PROFILE = WireProfile(name="compact", signature_bytes=32)

#: Signature-free accounting: counts only ids, headers and structure.
#: This reproduces the paper's *absolute* byte figures — at n=100,
#: k=34 the paper reports ~500 KB per node over ~56k relayed entries,
#: i.e. ~9 bytes per entry, which is the cost of the edge payload
#: without its cryptographic material (see EXPERIMENTS.md).
PAYLOAD_PROFILE = WireProfile(name="payload", signature_bytes=0)

#: The profile used by default everywhere.
DEFAULT_PROFILE = ECDSA_PROFILE
