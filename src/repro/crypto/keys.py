"""Key generation and distribution.

The experiment harness plays the role of the out-of-band setup phase:
it creates one key pair per process and hands each process *only its
own* private key plus the shared public directory.  Byzantine
behaviours therefore hold exactly the material the paper grants them
(their own keys), which is what makes forgery impossible.
"""

from __future__ import annotations

import random

from repro.crypto.signer import KeyPair, PublicDirectory, SignatureScheme
from repro.errors import UnknownKeyError
from repro.types import NodeId, validate_node_ids


class KeyStore:
    """Holds every key pair of a deployment; built once per experiment.

    Args:
        scheme: the signature scheme to generate keys for.
        node_ids: the process ids of the deployment.
        seed: RNG seed; the same seed always yields the same keys.
    """

    def __init__(self, scheme: SignatureScheme, node_ids, seed: int = 0) -> None:
        ids = sorted(set(node_ids))
        validate_node_ids(ids)
        rng = random.Random(("keystore", seed).__repr__())
        self.scheme = scheme
        self._key_pairs: dict[NodeId, KeyPair] = {
            node_id: scheme.generate_keypair(node_id, rng) for node_id in ids
        }
        self._directory = PublicDirectory(
            {node_id: pair.public_key for node_id, pair in self._key_pairs.items()}
        )

    @property
    def directory(self) -> PublicDirectory:
        """The shared public directory (safe to give to every node)."""
        return self._directory

    def key_pair_of(self, node_id: NodeId) -> KeyPair:
        """Return the key pair of ``node_id`` (setup-time only).

        Raises:
            UnknownKeyError: if the id has no keys.
        """
        try:
            return self._key_pairs[node_id]
        except KeyError:
            raise UnknownKeyError(f"no key pair for node {node_id}") from None

    def node_ids(self) -> frozenset[NodeId]:
        """All ids with generated keys."""
        return frozenset(self._key_pairs)


def build_keystore(scheme: SignatureScheme, n: int, seed: int = 0) -> KeyStore:
    """Create a :class:`KeyStore` for processes ``0 .. n-1``."""
    if n < 1:
        raise ValueError("a deployment needs at least one process")
    return KeyStore(scheme, range(n), seed=seed)
