"""Signature substrate: keys, schemes, neighborhood proofs, chains.

Besides the re-exports, this package hosts the **scheme registry**:
named factories for every signature scheme a declarative spec can ask
for (``env.scheme`` on any sweep — DESIGN.md §9.2).  Factories, not
instances, because :class:`HmacScheme` is stateful per deployment and
must be constructed fresh unless the artifact layer pools it.
"""

from typing import Callable

from repro.crypto.chain import (
    ChainLink,
    chain_message,
    chain_signers,
    extend_chain,
    verify_chain,
)
from repro.crypto.keys import KeyStore, build_keystore
from repro.crypto.proofs import (
    NeighborhoodProof,
    make_proof,
    proof_bytes,
    proof_message,
    verify_proof,
)
from repro.crypto.rsa import RsaScheme
from repro.crypto.signer import (
    HmacScheme,
    KeyPair,
    NullScheme,
    PublicDirectory,
    SignatureScheme,
    require_valid,
)
from repro.crypto.sizes import (
    COMPACT_PROFILE,
    DEFAULT_PROFILE,
    ECDSA_PROFILE,
    PAYLOAD_PROFILE,
    WireProfile,
)

#: scheme name -> factory; what ``env.scheme`` resolves against.  The
#: RSA tiers exist for keygen-cost realism (Miller–Rabin prime search):
#: ``rsa-256`` is fast enough for tests, ``rsa-512``/``rsa-1024`` make
#: key generation the dominant trial cost — the regime the artifact
#: layer's signer key pools are benchmarked in (``repro bench``).
SCHEME_FACTORIES: dict[str, Callable[[], SignatureScheme]] = {
    "hmac": HmacScheme,
    "rsa-256": lambda: RsaScheme(bits=256),
    "rsa-512": lambda: RsaScheme(bits=512),
    "rsa-1024": lambda: RsaScheme(bits=1024),
}


def resolve_scheme(name: str) -> SignatureScheme:
    """Instantiate a registered scheme by name.

    Raises:
        KeyError: for an unknown name (callers surface their own
            domain-specific error with the known names).
    """
    return SCHEME_FACTORIES[name]()


def scheme_fingerprint(scheme: SignatureScheme) -> tuple | None:
    """A hashable identity for pooling key material across trials.

    Two scheme instances with the same fingerprint generate identical
    key pairs from identical RNG seeds, so a :class:`KeyStore` built
    under one may be reused under the other.  Returns ``None`` for
    scheme types this module does not know — unknown schemes are never
    pooled (correct, just uncached).
    """
    if isinstance(scheme, HmacScheme):
        return ("hmac", scheme.signature_size)
    if isinstance(scheme, NullScheme):
        return ("null", scheme.signature_size)
    if isinstance(scheme, RsaScheme):
        return ("rsa", scheme.bits)
    return None


__all__ = [
    "ChainLink",
    "chain_message",
    "chain_signers",
    "extend_chain",
    "verify_chain",
    "KeyStore",
    "build_keystore",
    "NeighborhoodProof",
    "make_proof",
    "proof_bytes",
    "proof_message",
    "verify_proof",
    "RsaScheme",
    "HmacScheme",
    "KeyPair",
    "NullScheme",
    "PublicDirectory",
    "SCHEME_FACTORIES",
    "SignatureScheme",
    "require_valid",
    "resolve_scheme",
    "scheme_fingerprint",
    "COMPACT_PROFILE",
    "DEFAULT_PROFILE",
    "ECDSA_PROFILE",
    "PAYLOAD_PROFILE",
    "WireProfile",
]
