"""Signature substrate: keys, schemes, neighborhood proofs, chains."""

from repro.crypto.chain import (
    ChainLink,
    chain_message,
    chain_signers,
    extend_chain,
    verify_chain,
)
from repro.crypto.keys import KeyStore, build_keystore
from repro.crypto.proofs import (
    NeighborhoodProof,
    make_proof,
    proof_bytes,
    proof_message,
    verify_proof,
)
from repro.crypto.rsa import RsaScheme
from repro.crypto.signer import (
    HmacScheme,
    KeyPair,
    NullScheme,
    PublicDirectory,
    SignatureScheme,
    require_valid,
)
from repro.crypto.sizes import (
    COMPACT_PROFILE,
    DEFAULT_PROFILE,
    ECDSA_PROFILE,
    PAYLOAD_PROFILE,
    WireProfile,
)

__all__ = [
    "ChainLink",
    "chain_message",
    "chain_signers",
    "extend_chain",
    "verify_chain",
    "KeyStore",
    "build_keystore",
    "NeighborhoodProof",
    "make_proof",
    "proof_bytes",
    "proof_message",
    "verify_proof",
    "RsaScheme",
    "HmacScheme",
    "KeyPair",
    "NullScheme",
    "PublicDirectory",
    "SignatureScheme",
    "require_valid",
    "COMPACT_PROFILE",
    "DEFAULT_PROFILE",
    "ECDSA_PROFILE",
    "PAYLOAD_PROFILE",
    "WireProfile",
]
