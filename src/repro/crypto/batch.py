"""Stacked signature verification (DESIGN.md §15).

NECTAR's FULL validation verifies two endpoint signatures per
neighborhood proof and one outer link per relayed chain — thousands of
small HMAC checks per trial, each paying the per-call Python overhead
of :meth:`~repro.crypto.signer.SignatureScheme.verify`.  This module
collects a whole round's worth of those checks and answers them with
one :meth:`~repro.crypto.signer.HmacScheme.verify_stacked` pass: the
32-byte tags are compared as a single contiguous block, falling back
to per-item verification only on a mismatch so failure attribution is
preserved exactly.

The integration point is a *primer*: :class:`RoundPrimer` rides the
``SyncNetwork.delivery_prepass`` hook, predicts which announcements of
the round will reach signature verification (replaying NECTAR's
known-edge dedup), stacks their proof and outer-link checks, and
inserts the verdicts into the shared
:class:`~repro.crypto.cache.VerificationCache` before the scalar
delivery loop runs.  The loop then finds every verdict memoised.
Priming is warm-up only: verification is a pure function of
``(key, message, signature)``, so cached-by-primer and
computed-in-place verdicts are identical by construction and no
accept/reject decision can change.  Cache hit/miss *counters* can
differ slightly from the unprimed run (the primer counts one miss per
primed check; lookups that would have been first-sight misses become
hits) — counters are observability, not results, and nothing
downstream keys off them.

The experiment runner attaches a primer only to trials where the
prediction is exact: honest NECTAR deployments in FULL mode with a
shared cache, an :class:`~repro.crypto.signer.HmacScheme`, and a
channel that delivers everything (a lossy channel would make the
primer verify messages that never arrive).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.messages import EdgeAnnouncement, NectarBatch
from repro.crypto.cache import VerificationCache
from repro.crypto.chain import chain_message
from repro.crypto.proofs import proof_bytes, proof_message
from repro.crypto.signer import PublicDirectory, SignatureScheme
from repro.graphs.graph import Graph
from repro.types import Edge, NodeId

__all__ = ["RoundPrimer", "verify_stacked"]


def verify_stacked(
    scheme: SignatureScheme, items: list[tuple[bytes, bytes, bytes]]
) -> list[bool]:
    """Batched verify of ``(public_key, data, signature)`` triples.

    Dispatches to the scheme's stacked implementation; per-item
    verdicts are always what :meth:`SignatureScheme.verify` would have
    returned item by item.
    """
    return scheme.verify_stacked(items)


class RoundPrimer:
    """Warm a verification cache with one stacked pass per round.

    Args:
        graph: the deployment's communication graph (initial known
            edges of every node are its incident edges).
        cache: the deployment-shared verification cache to prime.
        scheme: the signature scheme (stacked verification pays off for
            :class:`~repro.crypto.signer.HmacScheme`; any scheme is
            correct).
        directory: the public-key directory.
    """

    def __init__(
        self,
        graph: Graph,
        cache: VerificationCache,
        scheme: SignatureScheme,
        directory: PublicDirectory,
    ) -> None:
        self._cache = cache
        self._scheme = scheme
        self._directory = directory
        # Predicted known-edge set per node, advanced in delivery
        # order exactly like NectarNode's dedup: the first copy of a
        # new edge is the one that gets validated, every later copy is
        # dropped before signature work.
        self._known: dict[NodeId, set[Edge]] = {
            node: {
                (min(node, neighbor), max(node, neighbor))
                for neighbor in graph.neighbors(node)
            }
            for node in graph.nodes()
        }

    def __call__(self, round_number: int, deliveries: Iterable[tuple]) -> None:
        cache = self._cache
        jobs: list[tuple[bytes, bytes, bytes]] = []
        # One pending record per stacked check: ("proof", proof) needs
        # the next two job verdicts, ("chain", payload, links,
        # prefix_hit) the next one.
        pending: list[tuple] = []
        seen_proofs: set[tuple] = set()
        seen_chains: set[tuple] = set()
        for envelope, destination, _size in deliveries:
            payload = envelope.payload
            if not isinstance(payload, NectarBatch):
                continue
            known = self._known[destination]
            for announcement in payload.announcements:
                proof = announcement.proof
                lo, hi = proof.edge
                if lo > hi:
                    lo, hi = hi, lo
                if lo == hi or (lo, hi) in known:
                    continue
                known.add((lo, hi))
                self._collect(
                    announcement, jobs, pending, seen_proofs, seen_chains
                )
        if not pending:
            return
        verdicts = self._scheme.verify_stacked(jobs)
        cursor = 0
        for record in pending:
            if record[0] == "proof":
                verdict = verdicts[cursor] and verdicts[cursor + 1]
                cursor += 2
                cache.prime_proof(record[1], verdict)
            else:
                _, chain_payload, links, prefix_hit = record
                cache.prime_chain(
                    chain_payload, links, verdicts[cursor], prefix_hit=prefix_hit
                )
                cursor += 1

    def _collect(
        self,
        announcement: EdgeAnnouncement,
        jobs: list[tuple[bytes, bytes, bytes]],
        pending: list[tuple],
        seen_proofs: set[tuple],
        seen_chains: set[tuple],
    ) -> None:
        directory = self._directory
        cache = self._cache
        proof = announcement.proof
        lo, hi = proof.edge
        proof_key = (proof.edge, proof.signature_lo, proof.signature_hi)
        if proof_key not in seen_proofs and not cache.has_proof(proof):
            seen_proofs.add(proof_key)
            if lo in directory and hi in directory:
                message = proof_message(lo, hi)
                jobs.append(
                    (directory.public_key_of(lo), message, proof.signature_lo)
                )
                jobs.append(
                    (directory.public_key_of(hi), message, proof.signature_hi)
                )
                pending.append(("proof", proof))
            else:
                cache.prime_proof(proof, False)
        links = announcement.chain
        if not links:
            return
        chain_payload = proof_bytes(proof)
        chain_key = (chain_payload, links)
        if chain_key in seen_chains or cache.has_chain(chain_payload, links):
            return
        if not cache.chain_prefix_valid(chain_payload, links):
            # Unknown prefix: leave it to the scalar full-chain scan
            # (possible only when the relayer's own verification was
            # evicted or bypassed; never on the honest fast path).
            return
        seen_chains.add(chain_key)
        prefix_hit = len(links) > 1
        outer = links[-1]
        if outer.signer not in directory:
            cache.prime_chain(chain_payload, links, False, prefix_hit=prefix_hit)
            return
        message = cache.pop_outer_message(chain_payload, links)
        if message is None:
            message = chain_message(chain_payload, links[:-1])
        jobs.append(
            (directory.public_key_of(outer.signer), message, outer.signature)
        )
        pending.append(("chain", chain_payload, links, prefix_hit))
