"""Signature schemes.

The paper assumes an asymmetric digital signature scheme (Sec. II):
Byzantine nodes cannot forge the signatures of other nodes.  Two
interchangeable implementations are provided:

* :class:`HmacScheme` — the default.  Fast and dependency-free: a
  node's private key is a random secret, its public key is a
  commitment to that secret, and the *scheme instance* keeps the
  secret-by-public directory needed to recompute tags at verification
  time.  This is the standard "signature oracle" modelling trick for
  protocol simulations: adversary code only ever receives its own
  private key (see :class:`repro.crypto.keys.KeyStore`), so a forgery
  would require inverting the oracle, which the API does not allow.
* :class:`repro.crypto.rsa.RsaScheme` — a real public-key scheme
  (textbook RSA with full-domain hashing) proving that no protocol
  logic depends on the oracle trick.

Signatures are padded to a configurable wire size so that network-cost
accounting is independent of the backend (see
:mod:`repro.crypto.sizes`).
"""

from __future__ import annotations

import abc
import hashlib
import hmac
from dataclasses import dataclass

from repro.errors import SignatureError, UnknownKeyError
from repro.types import NodeId


@dataclass(frozen=True)
class KeyPair:
    """A node's signing material.

    Attributes:
        node_id: owner of the key.
        private_key: secret signing key; only ever handed to the owner.
        public_key: public verification key, listed in the directory.
    """

    node_id: NodeId
    private_key: bytes
    public_key: bytes

    def __repr__(self) -> str:  # avoid leaking secrets in logs
        return f"KeyPair(node_id={self.node_id}, public_key={self.public_key.hex()[:16]}…)"


class SignatureScheme(abc.ABC):
    """Abstract signature scheme: keygen, sign, verify.

    Concrete schemes must be deterministic given the RNG passed to
    :meth:`generate_keypair` so that experiments are reproducible.
    """

    #: Wire size of a signature produced by this scheme, in bytes.
    signature_size: int

    @abc.abstractmethod
    def generate_keypair(self, node_id: NodeId, rng) -> KeyPair:
        """Create a key pair for ``node_id`` using ``rng`` for entropy."""

    @abc.abstractmethod
    def sign(self, key_pair: KeyPair, data: bytes) -> bytes:
        """Sign ``data`` with the private key; returns a fixed-size tag."""

    @abc.abstractmethod
    def verify(self, public_key: bytes, data: bytes, signature: bytes) -> bool:
        """Check ``signature`` over ``data`` against ``public_key``."""

    def verify_stacked(
        self, items: "list[tuple[bytes, bytes, bytes]]"
    ) -> list[bool]:
        """Verify many ``(public_key, data, signature)`` triples at once.

        The base implementation is the per-item loop; schemes with a
        cheaper batched check (see :class:`HmacScheme`) override it.
        The per-item verdicts are always identical to calling
        :meth:`verify` item by item — batching is an accelerator, not
        a semantic change.
        """
        return [
            self.verify(public_key, data, signature)
            for public_key, data, signature in items
        ]


class HmacScheme(SignatureScheme):
    """Unforgeable-signature model backed by HMAC-SHA256.

    ``sign`` computes HMAC(secret, data).  ``verify`` looks the secret
    up by public key in the scheme-internal directory and recomputes
    the tag.  Only :meth:`generate_keypair` populates that directory,
    so the only way to produce a tag accepted for node ``i`` is to hold
    node ``i``'s private key — exactly the paper's assumption.

    Args:
        signature_size: padded wire size of signatures (>= 32).
    """

    _TAG_LEN = 32  # SHA-256 output

    def __init__(self, signature_size: int = 64) -> None:
        if signature_size < self._TAG_LEN:
            raise ValueError(
                f"signature_size must be >= {self._TAG_LEN}, got {signature_size}"
            )
        self.signature_size = signature_size
        self._secret_by_public: dict[bytes, bytes] = {}

    def generate_keypair(self, node_id: NodeId, rng) -> KeyPair:
        secret = rng.randbytes(32)
        public = hashlib.sha256(b"repro-public|" + secret).digest()
        self._secret_by_public[public] = secret
        return KeyPair(node_id=node_id, private_key=secret, public_key=public)

    def sign(self, key_pair: KeyPair, data: bytes) -> bytes:
        # hmac.digest is the one-shot C path — noticeably faster than
        # hmac.new(...).digest() for the short messages signed here.
        tag = hmac.digest(key_pair.private_key, data, "sha256")
        return tag.ljust(self.signature_size, b"\x00")

    def verify(self, public_key: bytes, data: bytes, signature: bytes) -> bool:
        if len(signature) != self.signature_size:
            return False
        secret = self._secret_by_public.get(public_key)
        if secret is None:
            return False
        expected = hmac.digest(secret, data, "sha256")
        return hmac.compare_digest(signature[: self._TAG_LEN], expected)

    def verify_stacked(
        self, items: list[tuple[bytes, bytes, bytes]]
    ) -> list[bool]:
        """Batched verify: one constant-time compare over stacked tags.

        The expected tags are computed per item (each has its own key
        and message) but compared as ONE contiguous block: the given
        and recomputed 32-byte tags are concatenated and checked with a
        single ``hmac.compare_digest``.  Fixed-width segments make the
        block comparison equivalent to comparing every segment — equal
        iff all items verify.  Only on a mismatch (or on items that
        fail the structural checks: wrong length, unknown key) does it
        fall back to per-item verification, preserving exact per-item
        attribution of failures.
        """
        stacked_given: list[bytes] = []
        stacked_expected: list[bytes] = []
        clean = True
        for public_key, data, signature in items:
            if len(signature) != self.signature_size:
                clean = False
                break
            secret = self._secret_by_public.get(public_key)
            if secret is None:
                clean = False
                break
            stacked_given.append(signature[: self._TAG_LEN])
            stacked_expected.append(hmac.digest(secret, data, "sha256"))
        if clean and hmac.compare_digest(
            b"".join(stacked_given), b"".join(stacked_expected)
        ):
            return [True] * len(items)
        return [
            self.verify(public_key, data, signature)
            for public_key, data, signature in items
        ]


class NullScheme(SignatureScheme):
    """Accounting-only scheme for cost experiments without adversaries.

    Signing returns a deterministic placeholder of the right size and
    verification always succeeds.  This keeps byte accounting identical
    to :class:`HmacScheme` while removing per-message HMAC cost, which
    matters for the large n=100 sweeps of Fig. 3.  It must never be
    used in runs that contain Byzantine nodes; the experiment runner
    enforces this.
    """

    def __init__(self, signature_size: int = 64) -> None:
        if signature_size < 0:
            raise ValueError("signature_size cannot be negative")
        self.signature_size = signature_size

    def generate_keypair(self, node_id: NodeId, rng) -> KeyPair:
        ident = node_id.to_bytes(4, "big")
        return KeyPair(node_id=node_id, private_key=ident, public_key=ident)

    def sign(self, key_pair: KeyPair, data: bytes) -> bytes:
        return key_pair.public_key.ljust(self.signature_size, b"\x00")[
            : self.signature_size
        ]

    def verify(self, public_key: bytes, data: bytes, signature: bytes) -> bool:
        return len(signature) == self.signature_size


class PublicDirectory:
    """Read-only map from node id to public key (the system's PKI).

    Every process knows the ids of all ``n`` processes (Sec. II); this
    directory is the matching public-key listing, safe to share with
    all nodes including Byzantine ones.
    """

    def __init__(self, public_keys: dict[NodeId, bytes]) -> None:
        self._public_keys = dict(public_keys)

    def __len__(self) -> int:
        return len(self._public_keys)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._public_keys

    def public_key_of(self, node_id: NodeId) -> bytes:
        """Return the public key of ``node_id``.

        Raises:
            UnknownKeyError: if the id is not registered.
        """
        try:
            return self._public_keys[node_id]
        except KeyError:
            raise UnknownKeyError(f"no public key registered for node {node_id}") from None

    def node_ids(self) -> frozenset[NodeId]:
        """All registered node ids."""
        return frozenset(self._public_keys)


def require_valid(
    scheme: SignatureScheme,
    directory: PublicDirectory,
    signer: NodeId,
    data: bytes,
    signature: bytes,
) -> None:
    """Verify or raise.

    Convenience used by code paths where an invalid signature is a
    programming error rather than adversarial input.

    Raises:
        SignatureError: when verification fails.
        UnknownKeyError: when ``signer`` has no registered key.
    """
    public = directory.public_key_of(signer)
    if not scheme.verify(public, data, signature):
        raise SignatureError(f"invalid signature attributed to node {signer}")
