"""Memoized signature verification (DESIGN.md §6.1).

Verification is a pure function of ``(public key, message, signature)``,
so its result can be cached without changing a single accept/reject
decision — the equivalence suite in ``tests/test_verification_cache.py``
pins that down.  Two maps cover the two kinds of signatures NECTAR
checks:

* **proofs** — a :class:`repro.crypto.proofs.NeighborhoodProof` is keyed
  by ``(edge, signature_lo, signature_hi)``; the same proof object
  travels along every path its announcement takes, so a deployment-wide
  cache verifies each proof's two endpoint signatures once instead of
  once per (node, path).
* **chains** — a signature chain is keyed by ``(payload, links)``.
  Chains *extend*: the chain relayed in round R + 1 carries the round-R
  chain as a prefix.  When the prefix is already known-good, only the
  newly appended link is verified (the prefix short-circuit), which
  turns the O(R²) cost of re-verifying a growing chain into O(R)
  overall.

A cache can be scoped per node (each signature checked at most once per
node, the distributed-model reading) or shared across a whole simulated
deployment (the big win: every relay is verified once *globally*).
Sharing is safe precisely because verification is deterministic — the
cache never changes what a node would have concluded on its own.

Hit/miss counters live in :class:`CacheStats`, mirroring the style of
:class:`repro.net.stats.TrafficStats`, and are surfaced per trial via
``TrialResult.cache_stats``.

By default a cache is **unbounded** — a deployment's distinct-signature
count is bounded by the protocol itself, and unbounded retention keeps
cached and uncached runs bit-identical.  For long-lived caches (e.g. a
service verifying many deployments, or trials with n well past 200)
pass ``max_entries`` to cap the memo maps: the proof and chain verdict
maps evict least-recently-used first, counted in
``CacheStats.proof_evictions`` / ``chain_evictions``, while the
object-identity fast paths (announcements, signed-message handoffs)
are simply capped in insertion order — their entries are one-shot
accelerators, not verdicts, so precision there buys nothing.  Eviction
never changes a verdict — an evicted signature is simply re-verified
on its next appearance (the chain prefix short-circuit degrades to a
full scan when its prefix entry was evicted).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.chain import ChainLink, chain_message, verify_chain
from repro.crypto.proofs import NeighborhoodProof, proof_bytes, verify_proof
from repro.crypto.signer import KeyPair, PublicDirectory, SignatureScheme


@dataclass
class CacheStats:
    """Mutable hit/miss counters for one :class:`VerificationCache`.

    Attributes:
        announcement_hits: whole announcements recognised by object
            identity (a relay delivers the same announcement object to
            several neighbors).
        proof_hits / proof_misses: neighborhood-proof lookups.
        chain_hits: full-chain lookups answered from the cache.
        chain_prefix_hits: chains whose prefix was known-good, so only
            the outermost link had to be verified.
        chain_misses: chains verified from scratch.
        proof_evictions / chain_evictions: verdicts dropped by the
            bounded (LRU) mode; zero on unbounded caches.
    """

    announcement_hits: int = 0
    proof_hits: int = 0
    proof_misses: int = 0
    chain_hits: int = 0
    chain_prefix_hits: int = 0
    chain_misses: int = 0
    proof_evictions: int = 0
    chain_evictions: int = 0

    def hits(self) -> int:
        """Lookups that avoided a full re-verification."""
        return (
            self.announcement_hits
            + self.proof_hits
            + self.chain_hits
            + self.chain_prefix_hits
        )

    def misses(self) -> int:
        """Lookups that paid for a full verification."""
        return self.proof_misses + self.chain_misses

    def total(self) -> int:
        """All cache lookups."""
        return self.hits() + self.misses()

    def hit_rate(self) -> float:
        """Fraction of lookups served without full verification (0 if idle)."""
        total = self.total()
        return self.hits() / total if total else 0.0

    def evictions(self) -> int:
        """Verdicts dropped by the bounded mode (0 when unbounded)."""
        return self.proof_evictions + self.chain_evictions


class VerificationCache:
    """Memo table for proof and chain verification.

    Results (including negative ones — replayed garbage stays garbage)
    are stored forever by default; a cache is meant to live as long as
    one node or one simulated deployment, whose distinct-signature
    count is bounded by the protocol itself (n · m chain extensions
    for NECTAR).

    Args:
        max_entries: optional bound on *each* memo map.  ``None``
            (default) keeps everything — the equivalence-pinned
            historical behaviour.  A bound evicts least-recently-used
            verdicts from the proof and chain maps (counted in
            :class:`CacheStats`) and caps the identity fast-path maps
            in insertion order (uncounted — those entries are one-shot
            accelerators, not verdicts); it changes memory use and hit
            rates, never verdicts.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._proofs: dict[tuple, bool] = {}
        self._chains: dict[tuple, bool] = {}
        # Identity fast path: announcement object -> verdict.  Values
        # keep a strong reference to the object so an id() can never be
        # recycled while its entry lives.
        self._announcements: dict[int, tuple[object, bool]] = {}
        # Signed-message handoff (see extend_chain): chain tuple ->
        # (chain, payload, message bytes its outer link signed).
        self._sign_messages: dict[int, tuple[object, bytes, bytes]] = {}
        self._outer_messages: dict[int, tuple[object, bytes, bytes]] = {}

    def __len__(self) -> int:
        return len(self._proofs) + len(self._chains)

    def _touch(self, table: dict, key) -> None:
        """Mark ``key`` most-recently-used (bounded mode only)."""
        if self.max_entries is None:
            return
        table[key] = table.pop(key)

    def _bound(self, table: dict, counter: str | None = None) -> None:
        """Evict least-recently-used entries beyond ``max_entries``."""
        if self.max_entries is None:
            return
        while len(table) > self.max_entries:
            table.pop(next(iter(table)))
            if counter is not None:
                setattr(self.stats, counter, getattr(self.stats, counter) + 1)

    def verify_announcement(self, scheme, directory, announcement) -> bool:
        """Cached rules 4-5 for one relayed announcement.

        A relaying node hands the *same* announcement object to all its
        neighbors, so an object-identity memo answers every delivery
        after the first in O(1) without re-hashing the chain; value
        misses fall through to :meth:`verify_proof` and
        :meth:`verify_chain`, which also catch value-equal copies built
        independently (e.g. replays).
        """
        entry = self._announcements.get(id(announcement))
        if entry is not None and entry[0] is announcement:
            self.stats.announcement_hits += 1
            return entry[1]
        proof = announcement.proof
        result = self.verify_proof(scheme, directory, proof) and self.verify_chain(
            scheme, directory, proof_bytes(proof), announcement.chain
        )
        self._announcements[id(announcement)] = (announcement, result)
        self._bound(self._announcements)
        return result

    def verify_proof(
        self,
        scheme: SignatureScheme,
        directory: PublicDirectory,
        proof: NeighborhoodProof,
    ) -> bool:
        """Cached :func:`repro.crypto.proofs.verify_proof`."""
        key = (proof.edge, proof.signature_lo, proof.signature_hi)
        cached = self._proofs.get(key)
        if cached is not None:
            self.stats.proof_hits += 1
            self._touch(self._proofs, key)
            return cached
        self.stats.proof_misses += 1
        result = verify_proof(scheme, directory, proof)
        self._proofs[key] = result
        self._bound(self._proofs, "proof_evictions")
        return result

    def verify_chain(
        self,
        scheme: SignatureScheme,
        directory: PublicDirectory,
        payload: bytes,
        links: tuple[ChainLink, ...],
    ) -> bool:
        """Cached :func:`repro.crypto.chain.verify_chain`.

        A chain whose ``links[:-1]`` prefix is cached as valid only
        needs its outermost link checked; anything else falls back to
        the full scan.
        """
        if not links:
            return False  # malformed; too cheap to be worth caching
        key = (payload, links)
        cached = self._chains.get(key)
        if cached is not None:
            self.stats.chain_hits += 1
            self._touch(self._chains, key)
            return cached
        prefix = links[:-1]
        if not prefix or self._chains.get((payload, prefix)) is True:
            if prefix:
                self.stats.chain_prefix_hits += 1
                self._touch(self._chains, (payload, prefix))
            else:
                self.stats.chain_misses += 1
            result = self._verify_outer_link(scheme, directory, payload, links)
        else:
            self.stats.chain_misses += 1
            result = verify_chain(scheme, directory, payload, links)
        self._chains[key] = result
        self._bound(self._chains, "chain_evictions")
        return result

    # ------------------------------------------------------------------
    # Batch priming (repro.crypto.batch)
    # ------------------------------------------------------------------
    def has_proof(self, proof: NeighborhoodProof) -> bool:
        """Whether this proof's verdict is already memoised."""
        return (proof.edge, proof.signature_lo, proof.signature_hi) in self._proofs

    def prime_proof(self, proof: NeighborhoodProof, verdict: bool) -> None:
        """Insert a proof verdict computed by the stacked batch pass.

        The verification work happened outside the cache, so this
        counts as the miss the scalar path would have paid on first
        sight; the per-message lookup that follows becomes a hit.
        """
        self.stats.proof_misses += 1
        self._proofs[(proof.edge, proof.signature_lo, proof.signature_hi)] = verdict
        self._bound(self._proofs, "proof_evictions")

    def has_chain(self, payload: bytes, links: tuple[ChainLink, ...]) -> bool:
        """Whether this chain's verdict is already memoised."""
        return (payload, links) in self._chains

    def chain_prefix_valid(self, payload: bytes, links: tuple[ChainLink, ...]) -> bool:
        """Whether ``links[:-1]`` is empty or memoised as valid.

        When true, the chain's verdict is decided by its outermost
        link alone — the batch primer stacks exactly those link
        checks.
        """
        prefix = links[:-1]
        return not prefix or self._chains.get((payload, prefix)) is True

    def pop_outer_message(
        self, payload: bytes, links: tuple[ChainLink, ...]
    ) -> bytes | None:
        """Claim the signed-message handoff for a chain, if one exists.

        The batch primer verifies outer links in place of
        :meth:`_verify_outer_link`, so it takes over the handoff entry
        (the relayer's signing pass shared the exact message bytes).
        Identity-validated like every handoff lookup.
        """
        entry = self._outer_messages.pop(id(links), None)
        if entry is not None and entry[0] is links and entry[1] is payload:
            return entry[2]
        return None

    def prime_chain(
        self,
        payload: bytes,
        links: tuple[ChainLink, ...],
        verdict: bool,
        *,
        prefix_hit: bool,
    ) -> None:
        """Insert a chain verdict computed by the stacked batch pass."""
        prefix_key = (payload, links[:-1])
        if prefix_hit and prefix_key in self._chains:
            self.stats.chain_prefix_hits += 1
            self._touch(self._chains, prefix_key)
        else:
            # Either a genuinely prefix-less chain, or a bounded cache
            # evicted the prefix between collection and priming — the
            # scalar path would have paid a full-chain miss there too.
            self.stats.chain_misses += 1
        self._chains[(payload, links)] = verdict
        self._bound(self._chains, "chain_evictions")

    def extend_chain(
        self,
        scheme: SignatureScheme,
        key_pair: KeyPair,
        payload: bytes,
        links: tuple[ChainLink, ...],
    ) -> tuple[ChainLink, ...]:
        """Drop-in :func:`repro.crypto.chain.extend_chain` that shares
        message bytes between signers and verifiers.

        The message a relayer signs over ``(payload, links)`` is byte-
        for-byte the message the receiver must check the new outer link
        against; remembering it per chain object saves rebuilding it at
        every relayer of the same chain and at the first verifier of
        the extension.  Entries are validated by object identity on
        both the chain tuple *and* the payload, so a grafted chain over
        a different payload can never borrow the wrong message.
        """
        entry = self._sign_messages.get(id(links)) if links else None
        if entry is not None and entry[0] is links and entry[1] is payload:
            message = entry[2]
        else:
            message = chain_message(payload, links)
            if links:
                self._sign_messages[id(links)] = (links, payload, message)
                self._bound(self._sign_messages)
        signature = scheme.sign(key_pair, message)
        extended = links + (ChainLink(signer=key_pair.node_id, signature=signature),)
        self._outer_messages[id(extended)] = (extended, payload, message)
        self._bound(self._outer_messages)
        return extended

    def _verify_outer_link(
        self,
        scheme: SignatureScheme,
        directory: PublicDirectory,
        payload: bytes,
        links: tuple[ChainLink, ...],
    ) -> bool:
        """Check only ``links[-1]`` (its prefix is already trusted)."""
        link = links[-1]
        if link.signer not in directory:
            return False
        entry = self._outer_messages.pop(id(links), None)
        if entry is not None and entry[0] is links and entry[1] is payload:
            message = entry[2]
        else:
            message = chain_message(payload, links[:-1])
        public = directory.public_key_of(link.signer)
        return scheme.verify(public, message, link.signature)
