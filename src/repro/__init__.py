"""repro — a full reproduction of "Partition Detection in Byzantine
Networks" (Bromberg, Decouchant, Sourisseau, Taïani, ICDCS 2024).

The package implements NECTAR, the first t-Byzantine-resilient,
2t-sensitive network partition detection algorithm for arbitrary
graphs, together with every substrate it needs — chained signatures
and neighborhood proofs, a synchronous network (lock-step simulator
and asyncio byte-level transport), a graph library with exact vertex
connectivity, the MtG and MtGv2 baselines, the Byzantine attack
library of the paper's evaluation, and the experiment harness that
regenerates every figure.

Quickstart::

    from repro import harary_graph, run_trial, Decision

    graph = harary_graph(4, 12)          # 4-connected, 12 nodes
    result = run_trial(graph, t=1)       # honest run, t = 1
    verdict = result.verdicts[0]
    assert verdict.decision is Decision.NOT_PARTITIONABLE

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
figure reproductions.
"""

from repro.adversary import (
    EdgeConcealingNectarNode,
    FictitiousEdgeNectarNode,
    ForgingNectarNode,
    JunkInjectorNode,
    SaturatingMtgNode,
    SilentNode,
    SpamNectarNode,
    TwoFacedMtgNode,
    TwoFacedMtgv2Node,
    TwoFacedNectarNode,
    balanced_placement,
    random_placement,
    vertex_cut_placement,
)
from repro.baselines import BloomFilter, MtgNode, Mtgv2Node
from repro.core import (
    DiscoveredGraph,
    NectarNode,
    ValidationMode,
    nectar_round_count,
)
from repro.crypto import (
    HmacScheme,
    KeyStore,
    NullScheme,
    RsaScheme,
    build_keystore,
    make_proof,
)
from repro.experiments import (
    bridged_partition_scenario,
    build_deployment,
    build_topology,
    compute_ground_truth,
    honest_mtg_factory,
    honest_mtgv2_factory,
    honest_nectar_factory,
    run_trial,
    success_rate,
)
from repro.graphs import (
    Graph,
    is_byzantine_partitionable,
    is_vertex_cut,
    summarize,
    vertex_connectivity,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    drone_deployment,
    drone_graph,
    erdos_renyi,
    generalized_wheel,
    grid_graph,
    harary_graph,
    k_diamond,
    k_pasted_tree,
    multipartite_wheel,
    path_graph,
    random_regular_graph,
    star_graph,
    two_cliques_bridge,
)
from repro.net import AsyncCluster, SyncNetwork
from repro.types import BaselineDecision, Decision, GroundTruth, Verdict

__version__ = "1.0.0"

__all__ = [
    "EdgeConcealingNectarNode",
    "FictitiousEdgeNectarNode",
    "ForgingNectarNode",
    "JunkInjectorNode",
    "SaturatingMtgNode",
    "SilentNode",
    "SpamNectarNode",
    "TwoFacedMtgNode",
    "TwoFacedMtgv2Node",
    "TwoFacedNectarNode",
    "balanced_placement",
    "random_placement",
    "vertex_cut_placement",
    "BloomFilter",
    "MtgNode",
    "Mtgv2Node",
    "DiscoveredGraph",
    "NectarNode",
    "ValidationMode",
    "nectar_round_count",
    "HmacScheme",
    "KeyStore",
    "NullScheme",
    "RsaScheme",
    "build_keystore",
    "make_proof",
    "bridged_partition_scenario",
    "build_deployment",
    "build_topology",
    "compute_ground_truth",
    "honest_mtg_factory",
    "honest_mtgv2_factory",
    "honest_nectar_factory",
    "run_trial",
    "success_rate",
    "Graph",
    "is_byzantine_partitionable",
    "is_vertex_cut",
    "summarize",
    "vertex_connectivity",
    "complete_graph",
    "cycle_graph",
    "drone_deployment",
    "drone_graph",
    "erdos_renyi",
    "generalized_wheel",
    "grid_graph",
    "harary_graph",
    "k_diamond",
    "k_pasted_tree",
    "multipartite_wheel",
    "path_graph",
    "random_regular_graph",
    "star_graph",
    "two_cliques_bridge",
    "AsyncCluster",
    "SyncNetwork",
    "BaselineDecision",
    "Decision",
    "GroundTruth",
    "Verdict",
]
