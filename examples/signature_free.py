#!/usr/bin/env python3
"""Partition detection without signatures (the paper's conjecture).

The paper's conclusion speculates that Byzantine partition detection
"can be accomplished without signatures in synchronous networks,
albeit at a significant cost".  This example runs our constructive
take side by side with signed NECTAR: edges are certified by t + 1
vertex-disjoint delivery paths from *both* endpoints (Dolev-style)
instead of chained signatures — same verdicts on well-connected
graphs, at a steep messaging premium.

Run:  python examples/signature_free.py
"""

from repro import harary_graph, run_trial
from repro.extensions.unsigned import (
    build_unsigned_protocols,
    unsigned_round_count,
)
from repro.net.simulator import SyncNetwork
from repro.types import Decision

K, T = 4, 1


def compare(n: int):
    graph = harary_graph(K, n)
    signed = run_trial(graph, t=T, with_ground_truth=False)
    signed_msgs = sum(signed.stats.messages_sent.values())
    network = SyncNetwork(graph, build_unsigned_protocols(graph, T))
    verdicts = network.run(unsigned_round_count(n))
    unsigned_msgs = sum(network.stats.messages_sent.values())
    agree = {v.decision for v in signed.verdicts.values()} == {
        v.decision for v in verdicts.values()
    }
    return signed.verdicts[0].decision, agree, signed_msgs, unsigned_msgs


def main() -> None:
    print(f"Harary graphs, κ={K}, t={T}: signed vs signature-free NECTAR\n")
    print(f"{'n':>4}  {'decision':<18} {'agree':<6} {'signed msgs':>11} "
          f"{'unsigned msgs':>13} {'premium':>8}")
    for n in (8, 10, 12, 14):
        decision, agree, signed_msgs, unsigned_msgs = compare(n)
        print(
            f"{n:>4}  {str(decision):<18} {str(agree):<6} {signed_msgs:>11} "
            f"{unsigned_msgs:>13} {unsigned_msgs / signed_msgs:>7.1f}x"
        )
    print()
    print("Why it works: a claim carried by t+1 vertex-disjoint paths has")
    print("at least one fully-correct route, so it is authentic — Dolev's")
    print("argument.  Requiring claims from BOTH endpoints replaces the")
    print("co-signed neighborhood proof.  Why it costs: every copy drags")
    print("its path along, and distinct paths multiply.")


if __name__ == "__main__":
    main()


def test_signature_free_agrees_and_costs_more():
    decision, agree, signed_msgs, unsigned_msgs = compare(10)
    assert decision is Decision.NOT_PARTITIONABLE
    assert agree
    assert unsigned_msgs > signed_msgs
