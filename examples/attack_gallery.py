#!/usr/bin/env python3
"""Byzantine attack gallery: every attack of Sec. V-D, side by side.

Replays the paper's attacks against NECTAR, MtG and MtGv2 on a
partitioned network bridged by Byzantine nodes, and prints who gets
fooled.  This is the story of Fig. 8 in one screen.

Run:  python examples/attack_gallery.py
"""

from repro import (
    SaturatingMtgNode,
    TwoFacedMtgv2Node,
    TwoFacedNectarNode,
    balanced_placement,
    bridged_partition_scenario,
    drone_graph,
    honest_mtg_factory,
    honest_mtgv2_factory,
    honest_nectar_factory,
    run_trial,
    success_rate,
)
from repro.experiments.runner import NodeSetup
from repro.experiments.scenarios import PARTITIONED_DRONE_DISTANCE

N = 21
T = 2


def nectar_under_two_faced(scenario):
    def byz(setup: NodeSetup):
        return TwoFacedNectarNode(
            setup.node_id,
            setup.n,
            setup.t,
            setup.key_store.key_pair_of(setup.node_id),
            setup.scheme,
            setup.key_store.directory,
            setup.neighbor_proofs,
            silent_towards=scenario.muted,
        )

    return run_trial(
        scenario.graph,
        t=scenario.t,
        byzantine_factories={b: byz for b in scenario.byzantine},
        honest_factory=honest_nectar_factory,
    )


def mtgv2_under_two_faced(scenario):
    def byz(setup: NodeSetup):
        return TwoFacedMtgv2Node(
            setup.node_id,
            setup.n,
            setup.neighbors,
            setup.key_store.key_pair_of(setup.node_id),
            setup.scheme,
            setup.key_store.directory,
            silent_towards=scenario.muted,
        )

    return run_trial(
        scenario.graph,
        t=scenario.t,
        byzantine_factories={b: byz for b in scenario.byzantine},
        honest_factory=honest_mtgv2_factory,
    )


def mtg_under_saturation():
    graph = drone_graph(N, PARTITIONED_DRONE_DISTANCE, 1.2, seed=3)
    byzantine = balanced_placement(
        [range(N // 2), range(N // 2, N)], T, seed=3
    )

    def byz(setup: NodeSetup):
        return SaturatingMtgNode(setup.node_id, setup.n, setup.neighbors)

    return run_trial(
        graph,
        t=T,
        byzantine_factories={b: byz for b in byzantine},
        honest_factory=honest_mtg_factory,
    )


def show(name, attack, result):
    rate = success_rate(result.correct_verdicts, result.ground_truth)
    decisions = {}
    for verdict in result.correct_verdicts.values():
        key = getattr(verdict, "decision", verdict)
        decisions[str(key)] = decisions.get(str(key), 0) + 1
    print(f"{name:<8} vs {attack:<22} success={rate:>5.0%}   verdicts: {decisions}")


def main() -> None:
    print(f"scenario: {N} nodes, {T} Byzantine bridges between two islands\n")
    scenario = bridged_partition_scenario(N, T, seed=3)

    show("NECTAR", "two-faced bridges", nectar_under_two_faced(scenario))
    show("MtGv2", "two-faced bridges", mtgv2_under_two_faced(scenario))
    show("MtG", "filter saturation", mtg_under_saturation())

    print()
    print("NECTAR: every correct node answers PARTITIONABLE — the bridges")
    print("cannot push perceived connectivity above t, whatever they relay.")
    print("MtGv2: the favored island believes the network is connected")
    print("(it is! but the muted island cannot reach it) — agreement broken.")
    print("MtG: saturated Bloom filters make every id look reachable —")
    print("all correct nodes are fooled at once.")


if __name__ == "__main__":
    main()


def test_gallery_outcomes():
    """Pin the gallery's headline numbers."""
    scenario = bridged_partition_scenario(N, T, seed=3)
    nectar = nectar_under_two_faced(scenario)
    assert success_rate(nectar.correct_verdicts, nectar.ground_truth) == 1.0
    mtg = mtg_under_saturation()
    assert success_rate(mtg.correct_verdicts, mtg.ground_truth) == 0.0
