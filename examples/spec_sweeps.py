"""Declarative sweeps: the ExperimentSpec API in three moves.

Every figure of the reproduction is a registered
:class:`~repro.experiments.spec.SweepSpec` — named axes with reduced-
and paper-scale presets, expanded into picklable
:class:`~repro.experiments.spec.TrialSpec` cells that one shared
executor shards over worker processes.  This example shows the three
ways to drive that machinery:

1. run a registered figure with axis overrides (what `repro sweep`
   does under the hood),
2. execute a hand-built :class:`TrialSpec` directly — one trial, no
   figure scaffolding,
3. fingerprint a resolved sweep with the spec hash that keys the
   persistence layer.

Run with::

    PYTHONPATH=src python examples/spec_sweeps.py
"""

from repro.experiments.parallel import parallel_map
from repro.experiments.persistence import spec_digest
from repro.experiments.spec import (
    FIGURE_SPECS,
    SWEEP_ENGINE,
    TopologySpec,
    TrialSpec,
    execute_trial,
)

#: tiny axes so the example runs in seconds.
OVERRIDES = {"ns": (8, 10, 12), "ks": (2, 4)}


def run_registered_sweep():
    """Move 1: a registered figure, resolved and sharded by the engine."""
    figure = SWEEP_ENGINE.run("fig3", overrides=OVERRIDES, workers=2)
    return figure


def run_custom_trials():
    """Move 2: raw TrialSpecs through the shared cell executor.

    A custom experiment does not need a registered figure: build the
    specs, map them (serially here; pass ``workers=`` to shard), and
    keep the floats.
    """
    cells = [
        TrialSpec(
            topology=TopologySpec(kind="family", family="harary", n=n, k=4),
            protocol=protocol,
        )
        for n in (10, 14)
        for protocol in ("nectar", "mtgv2")
    ]
    costs = parallel_map(execute_trial, cells)
    return {
        (cell.topology.n, cell.protocol): cost
        for cell, cost in zip(cells, costs)
    }


def fingerprint_sweep():
    """Move 3: the stable spec hash behind hash-keyed persistence."""
    resolved = SWEEP_ENGINE.resolve("fig3", overrides=OVERRIDES)
    return resolved, spec_digest(resolved.payload())


def main() -> None:
    figure = run_registered_sweep()
    print(figure.render())
    print()
    costs = run_custom_trials()
    print("custom trial grid (KB sent per node):")
    for (n, protocol), cost in sorted(costs.items()):
        print(f"  n={n:<3} {protocol:<7} {cost:8.2f}")
    resolved, digest = fingerprint_sweep()
    print()
    print(f"registered sweeps : {len(FIGURE_SPECS)}")
    print(f"resolved fig3 axes: {dict(resolved.params)}")
    print(f"spec digest       : {digest[:16]}…")


# ----------------------------------------------------------------------
# Embedded checks (run by tests/test_examples.py)
# ----------------------------------------------------------------------
def test_registered_sweep_matches_wrapper():
    from repro.experiments.figures import fig3_regular_cost

    via_engine = run_registered_sweep()
    via_wrapper = fig3_regular_cost(ns=(8, 10, 12), ks=(2, 4))
    assert via_engine == via_wrapper


def test_custom_trials_ordered_and_positive():
    costs = run_custom_trials()
    assert len(costs) == 4
    assert all(cost > 0 for cost in costs.values())
    # NECTAR relays full topology evidence; MtGv2 gossips ids only.
    assert costs[(14, "nectar")] > costs[(14, "mtgv2")]


def test_digest_stability():
    _, first = fingerprint_sweep()
    _, second = fingerprint_sweep()
    assert first == second


if __name__ == "__main__":
    main()
