#!/usr/bin/env python3
"""Run NECTAR as a real asyncio cluster with bytes on the wire.

One asyncio task per node, length-framed binary messages through the
codec, per-message network jitter — the closest thing to the paper's
salticidae deployment that fits in a single process.  The run is then
repeated on the deterministic lock-step simulator to show both
backends agree byte-for-byte.

Run:  python examples/asyncio_cluster.py
"""

from repro import harary_graph, run_trial
from repro.core.nectar import nectar_round_count
from repro.crypto.sizes import DEFAULT_PROFILE
from repro.core.validation import ValidationMode
from repro.experiments.runner import NodeSetup, build_deployment, honest_nectar_factory
from repro.net.asyncio_net import AsyncCluster

N, K, T = 14, 4, 1


def build_protocols(graph):
    deployment = build_deployment(graph, seed=1)
    protocols = {}
    for v in graph.nodes():
        protocols[v] = honest_nectar_factory(
            NodeSetup(
                node_id=v,
                n=graph.n,
                t=T,
                graph=graph,
                key_store=deployment.key_store,
                scheme=deployment.scheme,
                profile=DEFAULT_PROFILE,
                neighbor_proofs=deployment.proofs_of(v),
                validation_mode=ValidationMode.FULL,
                connectivity_cutoff=None,
            )
        )
    return protocols


def main() -> None:
    graph = harary_graph(K, N)
    print(f"asyncio cluster: {N} node tasks, κ={K}, t={T}, jitter up to 5 ms\n")

    cluster = AsyncCluster(graph, build_protocols(graph), jitter_ms=5.0, seed=42)
    verdicts = cluster.run(nectar_round_count(N))
    total_kb = cluster.stats.total_bytes_sent() / 1000
    messages = sum(cluster.stats.messages_sent.values())
    print(f"async backend : {messages} messages, {total_kb:.1f} KB total")
    decision = verdicts[0].decision
    print(f"decision      : {decision} (agreement over all {N} tasks: "
          f"{len({v.decision for v in verdicts.values()}) == 1})\n")

    sync_result = run_trial(graph, t=T, backend="sync", with_ground_truth=False)
    sync_kb = sync_result.stats.total_bytes_sent() / 1000
    print(f"sync backend  : {sync_kb:.1f} KB total")
    print(
        "backends agree byte-for-byte:",
        cluster.stats.bytes_sent == sync_result.stats.bytes_sent,
    )


if __name__ == "__main__":
    main()


def test_asyncio_cluster_example():
    graph = harary_graph(K, N)
    cluster = AsyncCluster(graph, build_protocols(graph), jitter_ms=1.0, seed=42)
    verdicts = cluster.run(nectar_round_count(N))
    assert len({v.decision for v in verdicts.values()}) == 1
