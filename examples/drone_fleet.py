#!/usr/bin/env python3
"""Drone fleet scenario (Fig. 2): two scatters drifting apart.

Simulates two drone squadrons whose barycenters separate step by
step.  At every step, each drone runs NECTAR to decide whether the
fleet's mesh network could be partitioned by up to ``t`` compromised
drones — the moment the answer flips, the fleet knows it must
regroup *before* communication is actually lost.

Run:  python examples/drone_fleet.py
"""

from repro import Decision, drone_deployment, run_trial

FLEET_SIZE = 16
RADIUS = 1.8
BYZANTINE_BUDGET = 2


def bar(value: float, scale: float, width: int = 30) -> str:
    filled = 0 if scale == 0 else int(width * min(value / scale, 1.0))
    return "#" * filled


def main() -> None:
    print(f"fleet of {FLEET_SIZE} drones, radio range {RADIUS}, t={BYZANTINE_BUDGET}")
    print(f"{'d':>4}  {'κ':>3}  {'decision':<18} {'conf':<5} {'KB/node':>8}  cost")
    costs = []
    rows = []
    for step in range(0, 13):
        d = step * 0.5
        deployment = drone_deployment(FLEET_SIZE, d, RADIUS, seed=7)
        result = run_trial(deployment.graph, t=BYZANTINE_BUDGET)
        verdict = result.verdicts[0]
        kb = result.mean_kb_sent()
        costs.append(kb)
        rows.append((d, result.ground_truth.connectivity, verdict, kb))
    scale = max(costs)
    for d, kappa, verdict, kb in rows:
        flag = "!" if verdict.decision is Decision.PARTITIONABLE else " "
        print(
            f"{d:>4.1f}  {kappa:>3}  {str(verdict.decision):<18} "
            f"{str(verdict.confirmed):<5} {kb:>8.1f}  {bar(kb, scale)}{flag}"
        )
    print()
    print("Reading the table: while the scatters overlap, connectivity is")
    print("high and NECTAR answers NOT_PARTITIONABLE.  As they separate,")
    print("κ drops through the Byzantine budget (PARTITIONABLE — regroup")
    print("now!) and finally the mesh truly splits (confirmed=True).")
    print("Note the network cost also falls with distance, as in Fig. 4.")


if __name__ == "__main__":
    main()


def test_drone_fleet_flips_decision():
    """The fleet must see NOT_PARTITIONABLE near, PARTITIONABLE+confirmed far."""
    near = run_trial(drone_deployment(FLEET_SIZE, 0.0, RADIUS, seed=7).graph, t=2)
    far = run_trial(drone_deployment(FLEET_SIZE, 6.0, RADIUS, seed=7).graph, t=2)
    assert near.verdicts[0].decision is Decision.NOT_PARTITIONABLE
    assert far.verdicts[0].decision is Decision.PARTITIONABLE
    assert far.verdicts[0].confirmed
