#!/usr/bin/env python3
"""Sizing a permissioned-blockchain overlay with NECTAR.

Byzantine fault tolerant consensus (PBFT-style) assumes the ``3f+1``
replicas can always communicate — i.e. a *connected* overlay, even
with ``f`` traitors.  That assumption is exactly what NECTAR checks:
a committee overlay must not be f-Byzantine-partitionable, or a
colluding cut could stall consensus forever without ever equivocating.

This example sizes the peering degree of a 31-replica committee
(f = 10): for each candidate degree it builds a random regular
overlay, runs NECTAR at t = f, and reports whether the overlay is
safe to launch consensus on — plus what the partition check costs.

Run:  python examples/blockchain_overlay.py
"""

from repro import Decision, random_regular_graph, run_trial, summarize

REPLICAS = 31          # 3f + 1
FAULTY = 10            # f


def main() -> None:
    print(f"committee: {REPLICAS} replicas, tolerating f={FAULTY} Byzantine")
    print(f"{'degree':>7}  {'κ':>3}  {'NECTAR verdict':<20} {'KB/node':>8}")
    chosen = None
    for degree in (4, 8, 12, 16, 20, 24):
        graph = random_regular_graph(REPLICAS, degree, seed=degree)
        result = run_trial(graph, t=FAULTY)
        verdict = result.verdicts[0]
        kappa = result.ground_truth.connectivity
        print(
            f"{degree:>7}  {kappa:>3}  {str(verdict.decision):<20} "
            f"{result.mean_kb_sent():>8.1f}"
        )
        if chosen is None and verdict.decision is Decision.NOT_PARTITIONABLE:
            chosen = degree
    print()
    if chosen is not None:
        print(
            f"-> degree {chosen} is the cheapest overlay NECTAR certifies: "
            f"no placement of {FAULTY} colluding replicas can cut it."
        )
    print()
    print("Why 2t-sensitivity matters here: NECTAR only *guarantees* the")
    print("green light when κ >= 2f, because Byzantine replicas can hide")
    print("their mutual edges and make a sparser overlay look cuttable.")
    print("Budget peering for κ >= 2f, not just κ > f.")


if __name__ == "__main__":
    main()


def test_blockchain_overlay_sizing():
    """A κ >= 2f overlay is certified; a sparse one is not."""
    dense = random_regular_graph(REPLICAS, 24, seed=24)
    sparse = random_regular_graph(REPLICAS, 4, seed=4)
    assert (
        run_trial(dense, t=FAULTY).verdicts[0].decision
        is Decision.NOT_PARTITIONABLE
    )
    assert (
        run_trial(sparse, t=FAULTY).verdicts[0].decision
        is Decision.PARTITIONABLE
    )
