#!/usr/bin/env python3
"""Continuous partition monitoring of a mobile ad hoc network.

MANETs are the paper's motivating deployment (Sec. I): nodes move,
links appear and vanish, and the operator wants to know — ahead of
time — when up to t compromised nodes could cut the network.  This
example runs a random-waypoint patrol and feeds every topology epoch
to the :class:`PartitionMonitor`, printing the verdict timeline with
escalation markers.

Run:  python examples/manet_patrol.py
"""

from repro.extensions.monitor import PartitionMonitor
from repro.graphs.analysis import summarize
from repro.graphs.generators.mobility import random_waypoint_mission
from repro.types import Decision

NODES = 14
STEPS = 18
RADIUS = 2.6
ARENA = 5.0
SPEED = 0.7
BYZANTINE_BUDGET = 1


def main() -> None:
    print(
        f"MANET patrol: {NODES} nodes, arena {ARENA}x{ARENA}, "
        f"radio {RADIUS}, t={BYZANTINE_BUDGET}\n"
    )
    print(f"{'step':>4}  {'κ':>3}  {'m':>4}  {'verdict':<18} {'conf':<5} event")
    monitor = PartitionMonitor(t=BYZANTINE_BUDGET)
    mission = random_waypoint_mission(
        NODES, STEPS, radius=RADIUS, arena=ARENA, speed=SPEED, seed=2026
    )
    alarms = 0
    for snapshot in mission:
        report = monitor.observe(snapshot.graph, seed=snapshot.step)
        summary = summarize(snapshot.graph)
        if report.escalated:
            event = "<<< ESCALATION: regroup before links break"
            alarms += 1
        elif report.changed:
            event = "recovered"
        else:
            event = ""
        print(
            f"{snapshot.step:>4}  {summary.connectivity:>3}  {summary.edges:>4}  "
            f"{str(report.verdict.decision):<18} "
            f"{str(report.verdict.confirmed):<5} {event}"
        )
    print(f"\n{monitor.epochs_observed} epochs monitored, {alarms} escalations.")
    print("Each epoch is one full NECTAR run (footnote 2 of the paper:")
    print("the topology is assumed stable for the n-1 rounds of a run).")


if __name__ == "__main__":
    main()


def test_manet_patrol_monitors_every_step():
    monitor = PartitionMonitor(t=BYZANTINE_BUDGET)
    mission = random_waypoint_mission(
        NODES, 6, radius=RADIUS, arena=ARENA, speed=SPEED, seed=2026
    )
    reports = [monitor.observe(s.graph, seed=s.step) for s in mission]
    assert len(reports) == 6
    assert all(
        r.verdict.decision in (Decision.NOT_PARTITIONABLE, Decision.PARTITIONABLE)
        for r in reports
    )
