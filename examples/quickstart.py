#!/usr/bin/env python3
"""Quickstart: detect whether a network is Byzantine-partitionable.

Builds a few small topologies, runs NECTAR on each and prints the
per-node verdicts — the NOT_PARTITIONABLE / PARTITIONABLE decision of
Definition 3 plus the `confirmed` flag that signals an actual,
observed partition.

Run:  python examples/quickstart.py
"""

from repro import Decision, harary_graph, run_trial, star_graph, summarize
from repro.graphs.graph import Graph


def report(name: str, graph, t: int) -> None:
    """Run NECTAR with Byzantine budget t and print the outcome."""
    result = run_trial(graph, t=t)
    verdict = result.verdicts[0]  # Agreement: all nodes say the same
    summary = summarize(graph)
    print(f"{name:<28} {summary.describe()}")
    print(
        f"  t={t}: decision={verdict.decision}, confirmed={verdict.confirmed}, "
        f"reachable={verdict.reachable}/{graph.n}, "
        f"cost={result.mean_kb_sent():.1f} KB/node"
    )
    truth = result.ground_truth
    print(
        f"  ground truth: κ={truth.connectivity}, "
        f"t-Byzantine-partitionable={truth.byzantine_partitionable}"
    )
    print()


def main() -> None:
    # A 4-connected ring-with-chords: safe against one Byzantine node.
    report("Harary H(4,12)", harary_graph(4, 12), t=1)

    # The star of Fig. 1b: a single well-placed Byzantine node (the
    # center) could cut everyone off, so NECTAR warns PARTITIONABLE.
    report("star (Fig. 1b)", star_graph(8), t=1)

    # An actually partitioned network: two triangles with no link.
    two_islands = Graph(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
    report("two islands", two_islands, t=1)

    # Decision sensitivity: the same Harary graph declared with a
    # larger Byzantine budget becomes suspect.
    report("Harary H(4,12), larger t", harary_graph(4, 12), t=4)

    print("Legend: NOT_PARTITIONABLE — no placement of t Byzantine nodes")
    print("can disconnect correct nodes; PARTITIONABLE — it might;")
    print("confirmed=True — some nodes are already unreachable.")


if __name__ == "__main__":
    main()


def test_quickstart_runs():
    """Smoke test so the example stays working (collected by pytest)."""
    result = run_trial(harary_graph(4, 12), t=1)
    assert result.verdicts[0].decision is Decision.NOT_PARTITIONABLE
