"""Setuptools shim for environments without the wheel package.

``pip install -e .`` uses pyproject.toml (PEP 660) when wheel is
available; this shim lets ``python setup.py develop`` work offline.
"""
from setuptools import setup

setup()
